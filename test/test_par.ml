(* Parallel evaluation: the Counters/Profile merge monoid obeys its
   laws on random traces, and evaluating with a domain pool produces
   answers and gated counters bit-identical to the serial engines.
   (The one legitimately divergent counter, [gallops], moves only when
   a merge join's sorted outer side is sharded — its per-lane adaptive
   cursors start cold; the bench regression gate --ignores it in the
   parallel-parity job.) *)

module O = Alexander.Options
module S = Alexander.Solve
module W = Alexander.Workloads
module C = Datalog_engine.Counters
module P = Datalog_engine.Profile
module Par = Datalog_engine.Par
module J = Datalog_engine.Json
module Pred = Datalog_ast.Pred

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string

let run_exn ~options program query =
  match S.run ~options program query with
  | Ok report -> report
  | Error e -> Alcotest.fail (Alexander.Errors.message e)

(* -------------------------------------------------------------------- *)
(* The Counters monoid: random counter traces, split any way, fold back
   to the straight-line accumulation. *)

(* one trace event bumps one field by a small amount *)
type event = Ev of int * int (* field index 0..6, delta *)

let apply_event (c : C.t) (Ev (field, d)) =
  match field with
  | 0 -> c.C.facts_derived <- c.C.facts_derived + d
  | 1 -> c.C.firings <- c.C.firings + d
  | 2 -> c.C.probes <- c.C.probes + d
  | 3 -> c.C.scanned <- c.C.scanned + d
  | 4 -> c.C.iterations <- c.C.iterations + d
  | 5 -> c.C.merge_steps <- c.C.merge_steps + d
  | _ -> c.C.gallops <- c.C.gallops + d

let of_events evs =
  let c = C.zero () in
  List.iter (apply_event c) evs;
  c

let counters_equal (a : C.t) (b : C.t) =
  a.C.facts_derived = b.C.facts_derived
  && a.C.firings = b.C.firings
  && a.C.probes = b.C.probes
  && a.C.scanned = b.C.scanned
  && a.C.iterations = b.C.iterations
  && a.C.merge_steps = b.C.merge_steps
  && a.C.gallops = b.C.gallops

let arb_events =
  QCheck.make
    ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (Ev (f, d)) -> Printf.sprintf "%d+=%d" f d) evs))
    QCheck.Gen.(
      list_size (int_bound 60)
        (let* field = int_bound 6 in
         let* d = int_bound 9 in
         return (Ev (field, d))))

(* split positions: a list of cut points as fractions of the length *)
let split_at n l =
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (i + 1) (x :: acc) rest
  in
  go 0 [] l

let prop_counters_add_assoc_comm =
  QCheck.Test.make ~name:"Counters.add is associative and commutative"
    ~count:200
    (QCheck.triple arb_events arb_events arb_events)
    (fun (e1, e2, e3) ->
      let a () = of_events e1 and b () = of_events e2 and c () = of_events e3 in
      (* (a+b)+c = a+(b+c): fold into an accumulator both ways *)
      let l = C.zero () in
      C.add l (a ());
      C.add l (b ());
      C.add l (c ());
      let bc = b () in
      C.add bc (c ());
      let r = C.zero () in
      C.add r (a ());
      C.add r bc;
      (* commutativity: c+b+a *)
      let rev = C.zero () in
      C.add rev (c ());
      C.add rev (b ());
      C.add rev (a ());
      counters_equal l r && counters_equal l rev)

let prop_counters_split_merge =
  QCheck.Test.make
    ~name:"Counters: split-then-merge = straight-line on random traces"
    ~count:200
    (QCheck.pair arb_events (QCheck.small_nat))
    (fun (evs, cut) ->
      let straight = of_events evs in
      let cut = if evs = [] then 0 else cut mod (List.length evs + 1) in
      let l, r = split_at cut evs in
      let merged = C.zero () in
      C.add merged (of_events l);
      C.add merged (of_events r);
      (* zero is the identity *)
      C.add merged (C.zero ());
      counters_equal straight merged)

(* -------------------------------------------------------------------- *)
(* The Profile monoid: random probe/merge/derive traces over a small
   predicate pool, split across two profiles and folded back, equal the
   straight-line profile up to row order. *)

type pevent =
  | Probe of int * int (* pred index, scanned *)
  | Merge of int * int (* pred index, gallops *)
  | Derived of int

(* Lazy: interning at module-init time would shift the process-wide
   symbol ids other suites' set orderings depend on. *)
let preds = lazy [| Pred.make "p" 1; Pred.make "q" 2; Pred.make "r" 1 |]

let apply_pevent prof ev =
  let preds = Lazy.force preds in
  match ev with
  | Probe (i, scanned) -> P.probe prof preds.(i) ~scanned
  | Merge (i, gallops) -> P.merge prof preds.(i) ~gallops
  | Derived i -> P.derived prof preds.(i)

let profile_of_pevents evs =
  let prof = P.create () in
  List.iter (apply_pevent prof) evs;
  prof

let pred_rows_sorted prof =
  List.sort compare
    (List.map
       (fun (r : P.pred_row) ->
         ( r.P.pred_name,
           r.P.pred_arity,
           r.P.p_probes,
           r.P.p_scanned,
           r.P.p_derived,
           r.P.p_merge_steps,
           r.P.p_gallops ))
       (P.preds prof))

let arb_pevents =
  QCheck.make
    ~print:(fun evs -> string_of_int (List.length evs))
    QCheck.Gen.(
      list_size (int_bound 60)
        (let* i = int_bound 2 in
         let* kind = int_bound 2 in
         let* n = int_bound 9 in
         return
           (match kind with
           | 0 -> Probe (i, n)
           | 1 -> Merge (i, n)
           | _ -> Derived i)))

let prop_profile_split_merge =
  QCheck.Test.make
    ~name:"Profile.add: split-then-merge = straight-line up to row order"
    ~count:200
    (QCheck.pair arb_pevents QCheck.small_nat)
    (fun (evs, cut) ->
      let straight = profile_of_pevents evs in
      let cut = if evs = [] then 0 else cut mod (List.length evs + 1) in
      let l, r = split_at cut evs in
      let merged = profile_of_pevents l in
      P.add merged (profile_of_pevents r);
      (* the identity: folding in a fresh profile changes nothing *)
      P.add merged (P.create ());
      pred_rows_sorted straight = pred_rows_sorted merged)

let prop_profile_add_commutes =
  QCheck.Test.make
    ~name:"Profile.add is commutative up to row order" ~count:200
    (QCheck.pair arb_pevents arb_pevents)
    (fun (e1, e2) ->
      let ab = profile_of_pevents e1 in
      P.add ab (profile_of_pevents e2);
      let ba = profile_of_pevents e2 in
      P.add ba (profile_of_pevents e1);
      pred_rows_sorted ab = pred_rows_sorted ba)

(* -------------------------------------------------------------------- *)
(* End-to-end parity: a domain pool produces identical answers and gated
   counters.  [gallops] is compared too on the chain workloads (their
   sharded outer ops are probes/scans, where even gallops agree). *)

let with_domains ?(profile = false) domains strategy =
  { O.default with O.strategy; domains; profile }

let gated (r : S.report) =
  let c = r.S.counters in
  ( List.length r.S.answers,
    r.S.answers,
    c.C.facts_derived,
    c.C.firings,
    c.C.probes,
    c.C.scanned,
    c.C.iterations,
    c.C.merge_steps )

let check_parity name strategy program query ~check_gallops =
  let serial = run_exn ~options:(with_domains 1 strategy) program query in
  List.iter
    (fun domains ->
      let par = run_exn ~options:(with_domains domains strategy) program query in
      check tbool
        (Printf.sprintf "%s: answers+gated counters identical at %d domains"
           name domains)
        true
        (gated serial = gated par);
      if check_gallops then
        check tint
          (Printf.sprintf "%s: gallops identical at %d domains" name domains)
          serial.S.counters.C.gallops par.S.counters.C.gallops)
    [ 2; 4 ]

let test_parity_chain () =
  let program = W.ancestor_chain 260 in
  let query = atom "anc(100, X)" in
  List.iter
    (fun strategy ->
      check_parity
        ("chain/" ^ O.strategy_name strategy)
        strategy program query ~check_gallops:true)
    [ O.Seminaive; O.Magic; O.Alexander; O.Supplementary ]

let test_parity_same_generation () =
  let program = W.same_generation ~layers:6 ~width:10 in
  let query = atom "sg(0, X)" in
  List.iter
    (fun strategy ->
      check_parity
        ("sg/" ^ O.strategy_name strategy)
        strategy program query ~check_gallops:false)
    [ O.Seminaive; O.Magic; O.Alexander ]

let test_parity_negation () =
  let program =
    Datalog_parser.Parser.program_of_string
      ("reach(X) :- source(X).\n\
        reach(Y) :- reach(X), edge(X, Y).\n\
        dead(X) :- node(X), not reach(X).\n\
        source(0)."
      ^ String.concat ""
          (List.init 150 (fun i -> Printf.sprintf "edge(%d, %d)." i (i + 1)))
      ^ String.concat ""
          (List.init 200 (fun i -> Printf.sprintf "node(%d)." i)))
  in
  check_parity "negation/seminaive" O.Seminaive program (atom "dead(X)")
    ~check_gallops:true

(* profile rows merge identically too: same rule rows, same counts *)
let test_parity_profile_rows () =
  let program = W.ancestor_chain 260 in
  let query = atom "anc(100, X)" in
  let rows (r : S.report) =
    List.sort compare
      (List.map
         (fun (row : P.rule_row) ->
           ( row.P.rule_text,
             row.P.evals,
             row.P.firings,
             row.P.probes,
             row.P.scanned,
             row.P.derived,
             row.P.merge_steps ))
         (P.rules r.S.profile))
  in
  let serial =
    run_exn ~options:(with_domains ~profile:true 1 O.Seminaive) program query
  in
  let par =
    run_exn ~options:(with_domains ~profile:true 4 O.Seminaive) program query
  in
  check tbool "rule rows identical" true (rows serial = rows par)

(* the report carries the pool's stats block, and it really parallelized *)
let test_parallel_block () =
  let program = W.ancestor_chain 260 in
  let query = atom "anc(100, X)" in
  let report =
    run_exn ~options:(with_domains 4 O.Seminaive) program query
  in
  match report.S.parallel with
  | None -> Alcotest.fail "no parallel block at domains=4"
  | Some block ->
    check tbool "domains recorded" true (J.member "domains" block = Some (J.Int 4));
    let apps =
      match J.member "apps_parallel" block with Some (J.Int n) -> n | _ -> -1
    in
    check tbool "some applications were sharded" true (apps > 0);
    let serial =
      run_exn ~options:(with_domains 1 O.Seminaive) program query
    in
    check tbool "serial report has no parallel block" true
      (serial.S.parallel = None)

(* small outer relations stay on the coordinator (the min_outer
   fallback) — still correct, just not sharded *)
let test_small_stays_serial () =
  let program = W.ancestor_chain 20 in
  let query = atom "anc(5, X)" in
  let report = run_exn ~options:(with_domains 4 O.Seminaive) program query in
  (match report.S.parallel with
  | None -> Alcotest.fail "no parallel block"
  | Some block ->
    check tbool "all applications fell back to serial" true
      (J.member "apps_parallel" block = Some (J.Int 0)));
  let serial = run_exn ~options:(with_domains 1 O.Seminaive) program query in
  check tbool "answers still identical" true
    (report.S.answers = serial.S.answers)

let test_pool_create_rejects_one () =
  match Par.create 1 with
  | exception Invalid_argument _ -> ()
  | pool ->
    Par.shutdown pool;
    Alcotest.fail "Par.create 1 should Invalid_argument"

(* max-facts budgets stop parallel evaluation soundly: the partial
   answer set is a subset of the full one and the status is Exhausted *)
let test_limits_parallel_sound () =
  let program = W.ancestor_chain 260 in
  let query = atom "anc(100, X)" in
  let full = run_exn ~options:(with_domains 4 O.Seminaive) program query in
  let options =
    { (with_domains 4 O.Seminaive) with
      O.limits = Datalog_engine.Limits.make ~max_facts:500 ()
    }
  in
  let partial = run_exn ~options program query in
  check tbool "exhausted" true (S.incomplete partial);
  check tbool "partial answers are a subset" true
    (List.for_all
       (fun a -> List.mem a full.S.answers)
       partial.S.answers)

let suite =
  [ ( "par:monoid",
      List.map QCheck_alcotest.to_alcotest
        [ prop_counters_add_assoc_comm;
          prop_counters_split_merge;
          prop_profile_split_merge;
          prop_profile_add_commutes
        ] );
    ( "par:parity",
      [ Alcotest.test_case "chain workloads" `Quick test_parity_chain;
        Alcotest.test_case "same generation" `Quick test_parity_same_generation;
        Alcotest.test_case "negation" `Quick test_parity_negation;
        Alcotest.test_case "profile rows" `Quick test_parity_profile_rows;
        Alcotest.test_case "parallel stats block" `Quick test_parallel_block;
        Alcotest.test_case "small outer stays serial" `Quick
          test_small_stays_serial;
        Alcotest.test_case "pool rejects 1 domain" `Quick
          test_pool_create_rejects_one;
        Alcotest.test_case "limits stay sound" `Quick
          test_limits_parallel_sound
      ] )
  ]
