(* Incremental maintenance: semi-naive additions and DRed deletions must
   leave the database identical to full recomputation. *)

open Datalog_ast
open Datalog_storage
module I = Datalog_engine.Incremental
module W = Alexander.Workloads

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string
let prog = Datalog_parser.Parser.program_of_string

let saturate program =
  match Datalog_engine.Stratified.run program with
  | Ok outcome -> outcome.Datalog_engine.Stratified.db
  | Error msg -> Alcotest.fail msg

let db_facts db = Gen.db_facts_of (Database.preds db) db

let cnt () = Datalog_engine.Counters.create ()

let test_add_extends_closure () =
  let program = W.ancestor_chain 5 in
  let db = saturate program in
  let before = Database.cardinal db (Pred.make "anc" 2) in
  (* connect node 5 to a new node 6 *)
  (match I.add_facts (cnt ()) program db [ atom "edge(5, 6)" ] with
  | Ok n -> check tbool "inserted something" true (n > 0)
  | Error e -> Alcotest.fail e);
  let after = Database.cardinal db (Pred.make "anc" 2) in
  (* every old node now reaches 6: 6 new anc facts + the edge *)
  check tint "six new ancestor pairs" (before + 6) after;
  check tbool "anc(0,6)" true (Database.mem_atom db (atom "anc(0, 6)"))

let test_add_equals_recompute () =
  let program = W.ancestor_tree ~depth:3 ~fanout:2 in
  let db = saturate program in
  let additions = [ atom "edge(6, 100)"; atom "edge(100, 101)" ] in
  (match I.add_facts (cnt ()) program db additions with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let full =
    saturate
      (Program.make
         ~facts:(Program.facts program @ additions)
         (Program.rules program))
  in
  check tbool "incremental = recomputed" true (db_facts db = db_facts full)

let test_add_duplicate_noop () =
  let program = W.ancestor_chain 4 in
  let db = saturate program in
  let before = Database.total_facts db in
  (match I.add_facts (cnt ()) program db [ atom "edge(0, 1)" ] with
  | Ok n -> check tint "nothing new" 0 n
  | Error e -> Alcotest.fail e);
  check tint "size unchanged" before (Database.total_facts db)

let test_remove_equals_recompute () =
  let program = W.ancestor_chain 8 in
  let db = saturate program in
  (match I.remove_facts (cnt ()) program db [ atom "edge(3, 4)" ] with
  | Ok n -> check tbool "removed something" true (n > 0)
  | Error e -> Alcotest.fail e);
  let remaining_facts =
    List.filter
      (fun a -> not (Atom.equal a (atom "edge(3, 4)")))
      (Program.facts program)
  in
  let full = saturate (Program.make ~facts:remaining_facts (Program.rules program)) in
  check tbool "incremental = recomputed" true (db_facts db = db_facts full);
  check tbool "cut chain: 0 no longer reaches 8" false
    (Database.mem_atom db (atom "anc(0, 8)"))

let test_remove_rederives_alternatives () =
  (* two parallel paths 0->1->3 and 0->2->3: removing one edge keeps
     anc(0,3) alive through the other *)
  let program =
    prog
      "anc(X, Y) :- edge(X, Y). anc(X, Y) :- edge(X, Z), anc(Z, Y).\n\
       edge(0, 1). edge(1, 3). edge(0, 2). edge(2, 3)."
  in
  let db = saturate program in
  (match I.remove_facts (cnt ()) program db [ atom "edge(0, 1)" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check tbool "anc(0,3) survives via 0->2->3" true
    (Database.mem_atom db (atom "anc(0, 3)"));
  check tbool "anc(0,1) gone" false (Database.mem_atom db (atom "anc(0, 1)"))

let test_negation_rejected () =
  let program = prog "p(X) :- e(X), not q(X). q(1). e(1). e(2)." in
  let db = Database.of_facts (Program.facts program) in
  check tbool "additions rejected" true
    (Result.is_error (I.add_facts (cnt ()) program db [ atom "e(3)" ]));
  check tbool "deletions rejected" true
    (Result.is_error (I.remove_facts (cnt ()) program db [ atom "e(1)" ]))

let prop_incremental_add_equals_recompute =
  QCheck.Test.make
    ~name:"incremental additions = recomputation on random programs"
    ~count:40
    (QCheck.pair Gen.arb_positive_program
       (QCheck.make
          QCheck.Gen.(
            list_size (int_range 1 4) (pair (int_bound 5) (int_bound 5)))))
    (fun (program, new_edges) ->
      let db = saturate program in
      let additions =
        List.map
          (fun (a, b) -> Atom.app "e" [ Term.int a; Term.int b ])
          new_edges
      in
      match I.add_facts (cnt ()) program db additions with
      | Error _ -> false
      | Ok _ ->
        let full =
          saturate
            (Program.make
               ~facts:(Program.facts program @ additions)
               (Program.rules program))
        in
        db_facts db = db_facts full)

let prop_incremental_remove_equals_recompute =
  QCheck.Test.make
    ~name:"DRed deletions = recomputation on random programs" ~count:40
    (QCheck.pair Gen.arb_positive_program (QCheck.make QCheck.Gen.(int_bound 100)))
    (fun (program, pick) ->
      let facts = Program.facts program in
      QCheck.assume (facts <> []);
      let victim = List.nth facts (pick mod List.length facts) in
      let db = saturate program in
      match I.remove_facts (cnt ()) program db [ victim ] with
      | Error _ -> false
      | Ok _ ->
        let remaining = List.filter (fun a -> not (Atom.equal a victim)) facts in
        let full =
          saturate (Program.make ~facts:remaining (Program.rules program))
        in
        db_facts db = db_facts full)

let suite =
  [ ( "incremental",
      [ Alcotest.test_case "add extends closure" `Quick test_add_extends_closure;
        Alcotest.test_case "add = recompute" `Quick test_add_equals_recompute;
        Alcotest.test_case "duplicate add" `Quick test_add_duplicate_noop;
        Alcotest.test_case "remove = recompute" `Quick test_remove_equals_recompute;
        Alcotest.test_case "re-derivation" `Quick test_remove_rederives_alternatives;
        Alcotest.test_case "negation rejected" `Quick test_negation_rejected
      ] );
    ( "incremental:properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_incremental_add_equals_recompute;
          prop_incremental_remove_equals_recompute
        ] )
  ]
