(* The write-ahead log in isolation: CRC framing, dictionary deltas,
   torn-tail behaviour, truncation, rotation-reset.

   Three properties carry the module's contract:

   - round-trip: any sequence of appended transactions loads back
     exactly (txn ids, ops, idempotency keys, facts);
   - torn tail: a log cut at ANY byte offset inside its final frame
     loads leniently as exactly the preceding frames (with a [Torn]
     tail at the last frame boundary) and is refused outright in
     Strict mode — a torn write can cost at most the frame it tore;
   - replay ≡ direct apply: folding the loaded entries over a fresh
     database is byte-identical to applying the batches directly.

   Plus unit coverage for the edges: empty/absent/foreign files,
   version refusal, [truncate_last], [reset], dictionary re-emission
   after a reopen, and a short read injected at the load seam. *)

open Datalog_ast
open Datalog_storage
module W = Wal
module F = Faults

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string

let tmpfile () = Filename.temp_file "alexwal" ".wal"
let rm path = try Sys.remove path with Sys_error _ -> ()

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* ------------------------------------------------------------------ *)
(* Deterministic generators *)

let syms = [| "ann"; "bob"; "carol"; "dissent"; "marker_one"; "x" |]

let gen_fact rng =
  let arg () =
    if Random.State.bool rng then
      syms.(Random.State.int rng (Array.length syms))
    else string_of_int (Random.State.int rng 1000)
  in
  if Random.State.bool rng then
    atom (Printf.sprintf "edge(%s, %s)" (arg ()) (arg ()))
  else atom (Printf.sprintf "label(%s)" (arg ()))

(* (txn, op, key, facts) scripts; txns sequential like the server's *)
let gen_script rng n =
  List.init n (fun i ->
      let facts =
        List.init (1 + Random.State.int rng 4) (fun _ -> gen_fact rng)
      in
      let op = if Random.State.int rng 3 = 0 then `Remove else `Add in
      let key =
        if Random.State.bool rng then Some (Printf.sprintf "key %d" i)
        else None
      in
      (i + 1, op, key, facts))

let open_exn ?fsync ~valid_bytes path =
  match W.open_for_append ?fsync ~valid_bytes path with
  | Ok w -> w
  | Error msg -> Alcotest.fail ("open_for_append: " ^ msg)

let append_exn w (txn, op, key, facts) =
  match W.append w ~txn ~op ?key facts with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("append: " ^ msg)

(* write the whole script, closing (hence flushing) the writer *)
let write_script ?fsync path script =
  let w = open_exn ?fsync ~valid_bytes:0 path in
  List.iter (append_exn w) script;
  let size = W.size w in
  W.close w;
  size

let load_exn ?mode path =
  match W.load ?mode path with
  | Ok r -> r
  | Error c -> Alcotest.fail ("load: " ^ W.describe_corruption c)

let entry_matches (txn, op, key, facts) e =
  e.W.e_txn = txn && e.W.e_op = op && e.W.e_key = key
  && List.length facts = List.length e.W.e_facts
  && List.for_all2 Atom.equal facts e.W.e_facts

let check_script_loaded where script entries =
  check tint (where ^ ": entry count") (List.length script)
    (List.length entries);
  List.iteri
    (fun i (spec, e) ->
      if not (entry_matches spec e) then
        Alcotest.fail (Printf.sprintf "%s: entry %d does not match" where i))
    (List.combine script entries)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_roundtrip =
  QCheck.Test.make ~name:"frames round-trip" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0xa1e; seed |] in
      let script = gen_script rng (1 + Random.State.int rng 6) in
      let path = tmpfile () in
      Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
      rm path;
      let size = write_script ~fsync:W.Never path script in
      let entries, valid, tail = load_exn ~mode:Snapshot.Strict path in
      check tbool "clean tail" true (tail = W.Clean);
      check tint "valid bytes = writer position" size valid;
      check_script_loaded "roundtrip" script entries;
      true)

let prop_torn_tail =
  QCheck.Test.make ~name:"torn final frame truncates at every offset"
    ~count:12
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0x70a4; seed |] in
      let script = gen_script rng (2 + Random.State.int rng 3) in
      let prefix_script =
        List.filteri (fun i _ -> i < List.length script - 1) script
      in
      let path = tmpfile () in
      Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
      rm path;
      (* the boundary of the final frame, from the writer's own count *)
      let w = open_exn ~fsync:W.Never ~valid_bytes:0 path in
      List.iter (append_exn w) prefix_script;
      let boundary = W.size w in
      append_exn w (List.nth script (List.length script - 1));
      W.close w;
      let data = read_bytes path in
      let full = String.length data in
      check tbool "the final frame is not empty" true (full > boundary);
      for cut = boundary to full - 1 do
        write_bytes path (String.sub data 0 cut);
        (* lenient: the preceding frames load, the torn frame is cut *)
        let entries, valid, tail = load_exn ~mode:Snapshot.Lenient path in
        check tint
          (Printf.sprintf "cut@%d: valid prefix is the frame boundary" cut)
          boundary valid;
        check_script_loaded
          (Printf.sprintf "cut@%d" cut)
          prefix_script entries;
        (match tail with
        | W.Torn { at; _ } ->
          check tint (Printf.sprintf "cut@%d: torn at the boundary" cut)
            boundary at
        | W.Clean ->
          if cut <> boundary then
            Alcotest.fail
              (Printf.sprintf "cut@%d: a torn tail reported Clean" cut));
        (* strict: anything torn is refused *)
        match W.load ~mode:Snapshot.Strict path with
        | Ok _ when cut <> boundary ->
          Alcotest.fail
            (Printf.sprintf "cut@%d: strict load accepted a torn tail" cut)
        | Ok _ | Error (W.Damaged _) -> ()
        | Error c ->
          Alcotest.fail
            (Printf.sprintf "cut@%d: wrong corruption: %s" cut
               (W.describe_corruption c))
      done;
      true)

(* the loaded log, folded over a fresh database, equals direct apply *)
let prop_replay_equals_direct =
  QCheck.Test.make ~name:"replay = direct apply" ~count:50
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| 0x4e91a; seed |] in
      let script = gen_script rng (2 + Random.State.int rng 6) in
      let apply db op facts =
        List.iter
          (fun a ->
            ignore
              (match op with
              | `Add -> Database.add_atom db a
              | `Remove -> Database.remove_atom db a))
          facts
      in
      let direct = Database.create () in
      List.iter (fun (_, op, _, facts) -> apply direct op facts) script;
      let path = tmpfile () in
      Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
      rm path;
      ignore (write_script ~fsync:W.Never path script);
      let entries, _, _ = load_exn ~mode:Snapshot.Strict path in
      let replayed = Database.create () in
      List.iter (fun e -> apply replayed e.W.e_op e.W.e_facts) entries;
      let facts_of db =
        Database.preds db
        |> List.concat_map (fun p ->
               List.map
                 (fun t -> Format.asprintf "%a" Atom.pp (Tuple.to_atom p t))
                 (Database.tuples db p))
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "replayed state = direct state" (facts_of direct) (facts_of replayed);
      true)

(* ------------------------------------------------------------------ *)
(* Edges *)

let test_empty_and_absent () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  rm path;
  (* no file at all: an empty log, cleanly *)
  (match W.load ~mode:Snapshot.Strict path with
  | Ok ([], 0, W.Clean) -> ()
  | _ -> Alcotest.fail "absent file should load as an empty log");
  (* a zero-byte file: torn at creation — lenient recovers to empty,
     strict refuses *)
  write_bytes path "";
  (match W.load ~mode:Snapshot.Lenient path with
  | Ok ([], 0, W.Torn _) -> ()
  | _ -> Alcotest.fail "empty file should salvage to an empty log");
  (match W.load ~mode:Snapshot.Strict path with
  | Error (W.Not_a_log _) -> ()
  | _ -> Alcotest.fail "empty file must be refused strictly");
  (* garbage: same split *)
  write_bytes path "not a log at all\njunk\n";
  (match W.load ~mode:Snapshot.Lenient path with
  | Ok ([], 0, W.Torn _) -> ()
  | _ -> Alcotest.fail "foreign file should salvage to an empty log");
  match W.load ~mode:Snapshot.Strict path with
  | Error (W.Not_a_log _) -> ()
  | _ -> Alcotest.fail "foreign file must be refused strictly"

let test_unsupported_version () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  write_bytes path "ALEXWAL 99\n";
  (* a future format is fatal in BOTH modes: salvaging frames we cannot
     understand would silently drop acked transactions *)
  List.iter
    (fun mode ->
      match W.load ~mode path with
      | Error (W.Unsupported_version 99) -> ()
      | _ -> Alcotest.fail "future version must be refused in every mode")
    [ Snapshot.Strict; Snapshot.Lenient ]

let test_truncate_last () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  rm path;
  let w = open_exn ~valid_bytes:0 path in
  append_exn w (1, `Add, None, [ atom "edge(ann, bob)" ]);
  (* the second frame introduces a fresh symbol, then is rolled back *)
  append_exn w (2, `Add, None, [ atom "edge(rollback_sym, bob)" ]);
  (match W.truncate_last w with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("truncate_last: " ^ msg));
  (* the rolled-back symbol must be re-emitted by a later frame, or the
     log would not decode *)
  append_exn w (2, `Add, None, [ atom "edge(rollback_sym, cal)" ]);
  W.close w;
  let entries, _, tail = load_exn ~mode:Snapshot.Strict path in
  check tbool "clean tail" true (tail = W.Clean);
  check tint "two entries" 2 (List.length entries);
  (match entries with
  | [ _; e2 ] ->
    check tbool "the re-appended txn 2 survived" true
      (List.exists (Atom.equal (atom "edge(rollback_sym, cal)")) e2.W.e_facts)
  | _ -> Alcotest.fail "unexpected entries")

let test_reset () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  rm path;
  let w = open_exn ~valid_bytes:0 path in
  append_exn w (1, `Add, Some "k" , [ atom "edge(marker_one, bob)" ]);
  (match W.reset w with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("reset: " ^ msg));
  (match load_exn ~mode:Snapshot.Strict path with
  | [], _, W.Clean -> ()
  | _ -> Alcotest.fail "a reset log must be empty and clean");
  (* the dictionary state was reset too: a post-rotation frame using the
     old symbol must carry its own delta, so it decodes standalone *)
  append_exn w (2, `Add, None, [ atom "edge(marker_one, cal)" ]);
  W.close w;
  let entries, _, _ = load_exn ~mode:Snapshot.Strict path in
  check tint "one entry after reset" 1 (List.length entries);
  match entries with
  | [ e ] ->
    check tbool "post-reset frame decodes standalone" true
      (List.exists (Atom.equal (atom "edge(marker_one, cal)")) e.W.e_facts)
  | _ -> Alcotest.fail "unexpected entries"

let test_reopen_reemits_dictionary () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  rm path;
  (* writer 1 defines a symbol, then the process "dies" *)
  let size = write_script path [ (1, `Add, None, [ atom "edge(marker_one, bob)" ]) ] in
  (* writer 2 (a restart) has an empty written-set: its frames must not
     assume the dead writer's deltas *)
  let w = open_exn ~valid_bytes:size path in
  append_exn w (2, `Add, None, [ atom "edge(marker_one, cal)" ]);
  W.close w;
  let entries, _, tail = load_exn ~mode:Snapshot.Strict path in
  check tbool "clean tail" true (tail = W.Clean);
  check tint "both writers' frames load" 2 (List.length entries);
  match entries with
  | [ e1; e2 ] ->
    check tbool "writer 1 frame" true
      (List.exists (Atom.equal (atom "edge(marker_one, bob)")) e1.W.e_facts);
    check tbool "writer 2 frame decodes via its own delta" true
      (List.exists (Atom.equal (atom "edge(marker_one, cal)")) e2.W.e_facts)
  | _ -> Alcotest.fail "unexpected entries"

let test_short_read_salvage () =
  (* the Faults.Read seam: a short read at load time looks exactly like
     a torn file and must salvage the readable prefix *)
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
  rm path;
  let script =
    [ (1, `Add, None, [ atom "edge(ann, bob)" ]);
      (2, `Add, None, [ atom "edge(bob, cal)" ]) ]
  in
  ignore (write_script path script);
  let plan =
    { F.label = "short-read";
      decide =
        (fun ~index:_ op ->
          match op with F.Read -> F.Short_write 0.9 | _ -> F.Proceed)
    }
  in
  F.with_plan plan (fun () ->
      match W.load ~mode:Snapshot.Lenient path with
      | Ok (entries, _, W.Torn _) ->
        check tbool "a strict prefix survived the short read" true
          (List.length entries < 2)
      | Ok (_, _, W.Clean) ->
        Alcotest.fail "a 90% read cannot be a clean load"
      | Error c -> Alcotest.fail (W.describe_corruption c))

let test_fsync_policy_parsing () =
  check tbool "always" true (W.fsync_policy_of_string "always" = Ok W.Always);
  check tbool "never" true (W.fsync_policy_of_string "never" = Ok W.Never);
  check tbool "interval default" true
    (W.fsync_policy_of_string "interval" = Ok (W.Interval 0.05));
  check tbool "interval arg" true
    (W.fsync_policy_of_string "interval:0.5" = Ok (W.Interval 0.5));
  check tbool "bad interval" true
    (Result.is_error (W.fsync_policy_of_string "interval:-1"));
  check tbool "unknown" true (Result.is_error (W.fsync_policy_of_string "nope"))

let suite =
  [ ( "wal",
      [ Alcotest.test_case "empty + absent + foreign" `Quick
          test_empty_and_absent;
        Alcotest.test_case "unsupported version" `Quick
          test_unsupported_version;
        Alcotest.test_case "truncate_last" `Quick test_truncate_last;
        Alcotest.test_case "reset (rotation)" `Quick test_reset;
        Alcotest.test_case "reopen re-emits dictionary" `Quick
          test_reopen_reemits_dictionary;
        Alcotest.test_case "short read salvages" `Quick
          test_short_read_salvage;
        Alcotest.test_case "fsync policy parsing" `Quick
          test_fsync_policy_parsing
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_torn_tail; prop_replay_equals_direct ] )
  ]
