(* The dictionary encoding at the bottom of the runtime: every ground
   value maps to one immutable int, injectively, with decoding exact —
   including ints too large for the arithmetic (odd-code) embedding,
   which go through the process-wide side dictionary. *)

open Datalog_ast

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_small_ints_are_arithmetic () =
  (* in-range ints encode as 2i+1: no dictionary traffic *)
  let before = Code.dictionary_size () in
  List.iter
    (fun i ->
      let c = Code.of_int i in
      check tbool "odd" true (c = (i lsl 1) lor 1);
      check tbool "is_int" true (Code.is_int c);
      check tint "decodes" i (Code.to_int c))
    [ 0; 1; -1; 42; -1000; max_int asr 1; min_int asr 1 ];
  check tint "no dictionary growth" before (Code.dictionary_size ())

let test_big_ints_go_through_dictionary () =
  let before = Code.dictionary_size () in
  let big = max_int asr 1 in
  List.iter
    (fun i ->
      check tbool "does not fit small" false (Code.fits_small i);
      let c = Code.of_int i in
      check tbool "negative even code" true (c < 0 && c land 1 = 0);
      check tint "decodes exactly" i (Code.to_int c);
      check tbool "re-encoding is stable" true (Code.equal c (Code.of_int i)))
    [ big + 1; max_int; -(big + 2); min_int ];
  check tbool "dictionary grew" true (Code.dictionary_size () > before)

let test_symbols_are_even_ids () =
  let s = Symbol.intern "code-test-sym" in
  let c = Code.of_symbol s in
  check tbool "even non-negative" true (c >= 0 && c land 1 = 0);
  check tbool "is_symbol" true (Code.is_symbol c);
  check tbool "not is_int" false (Code.is_int c);
  check tbool "decodes" true (Value.equal (Code.to_value c) (Value.Sym s));
  check tbool "of_value agrees" true (Code.equal c (Code.of_value (Value.Sym s)))

let test_compare_values_matches_value_compare () =
  let vs =
    [ Value.sym "a"; Value.sym "zz"; Value.int (-3); Value.int 0;
      Value.int 7; Value.int max_int; Value.int min_int
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let expect = compare (Value.compare a b) 0 in
          let got =
            compare (Code.compare_values (Code.of_value a) (Code.of_value b)) 0
          in
          check tint
            (Format.asprintf "order of %a vs %a" Value.pp a Value.pp b)
            expect got)
        vs)
    vs

let test_eval_cmp_matches_literal_semantics () =
  let vs = [ Value.sym "s"; Value.int (-1); Value.int 5; Value.int max_int ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun cmp ->
              check tbool "cmp agrees on codes"
                (Literal.eval_cmp cmp a b)
                (Code.eval_cmp cmp (Code.of_value a) (Code.of_value b)))
            [ Literal.Eq; Literal.Neq; Literal.Lt; Literal.Leq; Literal.Gt;
              Literal.Geq
            ])
        vs)
    vs

(* -------------------------------------------------------------------- *)
(* Thread-safety: the side dictionary and the symbol intern table are
   process-wide mutable state guarded by a mutex; four domains interning
   the same out-of-range ints and symbol names concurrently must agree
   on every code, decode exactly, and never create duplicate entries. *)

let test_concurrent_interning () =
  let n_domains = 4 and n_values = 200 in
  let seed = 0x5eed + Hashtbl.hash "code-stress" in
  let big k = max_int - 1 - (k * 7919) - (seed land 0xff) in
  let sym k = Printf.sprintf "stress_sym_%d_%d" (seed land 0xfff) k in
  let worker () =
    Array.init n_values (fun k ->
        let ic = Code.of_int (big k) in
        let sc = Code.of_symbol (Symbol.intern (sym k)) in
        let fc = Code.of_symbol (Symbol.fresh "stress_fresh") in
        (ic, sc, fc))
  in
  let domains = Array.init n_domains (fun _ -> Domain.spawn worker) in
  let results = Array.map Domain.join domains in
  (* every domain computed the same code for the same value *)
  Array.iter
    (fun row ->
      Array.iteri
        (fun k (ic, sc, _) ->
          let ic0, sc0, _ = results.(0).(k) in
          check tbool "int codes agree across domains" true (Code.equal ic ic0);
          check tbool "symbol codes agree across domains" true
            (Code.equal sc sc0);
          check tint "decodes exactly" (big k) (Code.to_int ic))
        row)
    results;
  (* distinct inputs got distinct codes (injectivity survived the race) *)
  let all = Hashtbl.create 256 in
  Array.iteri
    (fun k (ic, sc, _) ->
      check tbool "int/sym codes distinct" false (Code.equal ic sc);
      Hashtbl.replace all ic ("i", k);
      Hashtbl.replace all sc ("s", k))
    results.(0);
  check tint "no code collisions" (2 * n_values) (Hashtbl.length all);
  Array.iteri
    (fun k (ic, sc, _) ->
      check tbool "int slot" true (Hashtbl.find all ic = ("i", k));
      check tbool "sym slot" true (Hashtbl.find all sc = ("s", k)))
    results.(0);
  (* [fresh] never handed the same symbol to two callers *)
  let fresh_codes = Hashtbl.create 256 in
  Array.iter
    (Array.iter (fun (_, _, fc) ->
         check tbool "fresh symbol is unique" false (Hashtbl.mem fresh_codes fc);
         Hashtbl.replace fresh_codes fc ()))
    results;
  check tint "all fresh symbols distinct" (n_domains * n_values)
    (Hashtbl.length fresh_codes)

(* -------------------------------------------------------------------- *)
(* Properties *)

let arb_value =
  QCheck.make
    ~print:(Format.asprintf "%a" Value.pp)
    QCheck.Gen.(
      oneof
        [ map Value.int int;  (* full-range: exercises the dictionary *)
          map Value.int (int_range (-1000) 1000);
          map (fun s -> Value.sym s) (string_size (int_bound 10))
        ])

let prop_roundtrip =
  QCheck.Test.make ~name:"Code.of_value/to_value round-trips any value"
    ~count:1000 arb_value (fun v ->
      Value.equal v (Code.to_value (Code.of_value v)))

let prop_injective =
  QCheck.Test.make ~name:"distinct values get distinct codes" ~count:500
    (QCheck.pair arb_value arb_value) (fun (a, b) ->
      Code.equal (Code.of_value a) (Code.of_value b) = Value.equal a b)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal codes hash equally" ~count:500 arb_value
    (fun v ->
      Code.hash (Code.of_value v) = Code.hash (Code.of_value v))

let suite =
  [ ( "code",
      [ Alcotest.test_case "small ints arithmetic" `Quick
          test_small_ints_are_arithmetic;
        Alcotest.test_case "big ints via dictionary" `Quick
          test_big_ints_go_through_dictionary;
        Alcotest.test_case "symbols" `Quick test_symbols_are_even_ids;
        Alcotest.test_case "value order" `Quick
          test_compare_values_matches_value_compare;
        Alcotest.test_case "comparison literals" `Quick
          test_eval_cmp_matches_literal_semantics;
        Alcotest.test_case "concurrent interning (4 domains)" `Quick
          test_concurrent_interning
      ] );
    ( "code:properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_roundtrip; prop_injective; prop_hash_consistent ] )
  ]
