(* The runtime adornment-lattice subsumption filter: dropping a specific
   magic/problem fact whose strictly-more-general call is already present
   must never change answers (the bridge rules restore the dropped calls'
   answers), while strictly lowering derived facts and probes on the
   bound-pair workloads.  Also here: the idempotent rewrite registry and
   the transformation-based well-founded engine against its alternating
   differential oracle. *)

open Datalog_ast
module O = Alexander.Options
module S = Alexander.Solve
module W = Alexander.Workloads
module C = Datalog_engine.Counters
module Wf = Datalog_engine.Wellfounded

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string

let run ?(subsume = true) ?(sips = Datalog_rewrite.Sips.Left_to_right)
    strategy program query =
  S.run_exn ~options:{ O.default with O.strategy; sips; subsume } program query

let answers report = report.S.answers

(* ---------------------------------------------------------------- *)
(* Registry idempotency *)

let test_registry_idempotent () =
  let module R = Datalog_rewrite.Registry in
  let module B = Datalog_rewrite.Binding in
  let t = R.create () in
  let p = Pred.make "m_anc__bf" 1 in
  let src = Pred.make "anc" 2 in
  let kind = R.Magic (src, B.of_string "bf") in
  R.register t p kind;
  (* the seed-fact path re-registers the query's magic predicate after
     adornment already did; the first registration must win and the table
     must keep a single entry *)
  R.register t p (R.Sup (0, 0));
  (match R.kind_of t p with
  | Some (R.Magic _) -> ()
  | _ -> Alcotest.fail "first registration should win");
  check tint "single entry" 1 (R.fold (fun _ _ n -> n + 1) t 0)

(* ---------------------------------------------------------------- *)
(* Deterministic pins on the bound-pair workloads *)

let magic_family = [ O.Magic; O.Supplementary; O.Supplementary_idb; O.Alexander ]

let test_subsume_triggers_and_preserves_answers () =
  let program = W.tc_bound_pair 30 in
  let query = atom "tc(0, 30)" in
  List.iter
    (fun strategy ->
      let on = run strategy program query in
      let off = run ~subsume:false strategy program query in
      let name = O.strategy_name strategy in
      check tbool (name ^ ": filter fired") true
        (on.S.counters.C.subsumed > 0);
      check tint (name ^ ": off-run untouched") 0 off.S.counters.C.subsumed;
      check
        (Alcotest.list (Alcotest.list Alcotest.int))
        (name ^ ": answers agree")
        (List.map Array.to_list (answers off))
        (List.map Array.to_list (answers on));
      check tbool (name ^ ": fewer facts derived") true
        (on.S.counters.C.facts_derived < off.S.counters.C.facts_derived))
    magic_family

let test_subsume_strictly_cheaper_magic () =
  (* the acceptance pin: facts AND probes strictly decrease (the bench
     baseline carries the same cells; see BENCH_baseline.json) *)
  List.iter
    (fun (name, program, q, strategies) ->
      let query = atom q in
      List.iter
        (fun strategy ->
          let on = run strategy program query in
          let off = run ~subsume:false strategy program query in
          let cell = name ^ "/" ^ O.strategy_name strategy in
          check tbool (cell ^ ": facts strictly lower") true
            (on.S.counters.C.facts_derived < off.S.counters.C.facts_derived);
          check tbool (cell ^ ": probes strictly lower") true
            (on.S.counters.C.probes < off.S.counters.C.probes))
        strategies)
    [ ("tc chain", W.tc_bound_pair 60, "tc(0, 60)", [ O.Magic ]);
      ( "tc tree 7x2",
        W.tc_bound_tree ~depth:7 ~fanout:2,
        "tc(0, 200)",
        [ O.Magic; O.Supplementary_idb; O.Alexander ] );
      ( "tc tree 5x3",
        W.tc_bound_tree ~depth:5 ~fanout:3,
        "tc(0, 300)",
        [ O.Magic; O.Supplementary_idb; O.Alexander ] );
      ( "tc random",
        W.tc_bound_random ~nodes:80 ~edges:160 ~seed:7,
        "tc(0, 40)",
        [ O.Magic; O.Supplementary ] )
    ]

let test_no_comparable_pair_is_inert () =
  (* single-adornment programs must be bit-for-bit unaffected: the filter
     has no comparable pairs, so the rewriting declares no subsumption
     and the counters coincide exactly *)
  let program = W.same_generation ~layers:4 ~width:4 in
  let query = atom "sg(0, X)" in
  List.iter
    (fun strategy ->
      let on = run strategy program query in
      let off = run ~subsume:false strategy program query in
      let name = O.strategy_name strategy in
      check tint (name ^ ": nothing subsumed") 0 on.S.counters.C.subsumed;
      check tint (name ^ ": same facts")
        off.S.counters.C.facts_derived on.S.counters.C.facts_derived;
      check tint (name ^ ": same probes")
        off.S.counters.C.probes on.S.counters.C.probes)
    magic_family

(* ---------------------------------------------------------------- *)
(* Properties *)

let same_answers a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Array.to_list x = Array.to_list y) a b

(* --subsume / --no-subsume answer equality across every strategy and
   both SIPs, over random programs with one- and two-sided bound
   queries *)
let prop_subsume_preserves_answers =
  QCheck.Test.make ~name:"subsumption filter preserves answers" ~count:40
    Gen.arb_positive_program_any_query (fun (program, query) ->
      List.for_all
        (fun sips ->
          List.for_all
            (fun strategy ->
              let on = run ~sips strategy program query in
              let off = run ~subsume:false ~sips strategy program query in
              same_answers (answers on) (answers off))
            O.all_strategies)
        [ Datalog_rewrite.Sips.Left_to_right; Datalog_rewrite.Sips.Greedy_bound ])

(* same equality on stratified programs with negation (the rewritten
   program may lose stratification and fall back to the conditional
   evaluator, where companions stay empty and bridges stay inert) *)
let prop_subsume_preserves_answers_negation =
  QCheck.Test.make
    ~name:"subsumption filter preserves answers under negation" ~count:30
    Gen.arb_stratified_program_query (fun (program, query) ->
      QCheck.assume (Datalog_analysis.Stratify.is_stratified program);
      List.for_all
        (fun strategy ->
          let on = run strategy program query in
          let off = run ~subsume:false strategy program query in
          same_answers (answers on) (answers off))
        O.all_strategies)

(* ---------------------------------------------------------------- *)
(* Well-founded: transformation-based engine vs the alternating oracle *)

let wf_agrees program =
  let a = Wf.run program in
  let b = Wf.run_alternating program in
  let idb = Gen.idb_preds program in
  Gen.db_facts_of idb a.Wf.true_db = Gen.db_facts_of idb b.Wf.true_db
  && List.sort Atom.compare a.Wf.undefined
     = List.sort Atom.compare b.Wf.undefined

let prop_wellfounded_differential =
  QCheck.Test.make
    ~name:"transformation-based WF agrees with alternating fixpoint"
    ~count:60 Gen.arb_unstratified_program wf_agrees

let test_wf_agrees_on_games () =
  List.iter
    (fun (name, program) ->
      check tbool name true (wf_agrees program))
    [ ("win tree", W.win_tree ~depth:5 ~fanout:2);
      ("win cycle dense", W.win_cycle_dense ~nodes:24 ~seed:11);
      ("win dag", W.win_move_dag 20);
      ("win random", W.win_move_random ~nodes:15 ~edges:30 ~seed:3)
    ]

let suite =
  [ ( "subsume",
      [ Alcotest.test_case "registry idempotent" `Quick
          test_registry_idempotent;
        Alcotest.test_case "filter fires, answers preserved" `Quick
          test_subsume_triggers_and_preserves_answers;
        Alcotest.test_case "strictly cheaper on bound pairs" `Quick
          test_subsume_strictly_cheaper_magic;
        Alcotest.test_case "inert without comparable pairs" `Quick
          test_no_comparable_pair_is_inert;
        Alcotest.test_case "WF engines agree on games" `Quick
          test_wf_agrees_on_games
      ] );
    ( "subsume:properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_subsume_preserves_answers;
          prop_subsume_preserves_answers_negation;
          prop_wellfounded_differential
        ] )
  ]
