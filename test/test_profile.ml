(* Profiling: the per-rule / per-predicate rows reconcile exactly with
   the global counters for every strategy, the JSON schema is pinned,
   trace sinks receive round lines, and an unprofiled run stays on the
   inactive sentinel. *)

module O = Alexander.Options
module S = Alexander.Solve
module P = Datalog_engine.Profile
module C = Datalog_engine.Counters
module J = Datalog_engine.Json
module W = Alexander.Workloads

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstrings = Alcotest.(list string)

let atom = Datalog_parser.Parser.atom_of_string
let program = Datalog_parser.Parser.program_of_string

let run_exn ~options program query =
  match S.run ~options program query with
  | Ok report -> report
  | Error e -> Alcotest.fail (Alexander.Errors.message e)

let profiled ?(negation = O.Auto) ?trace strategy =
  { O.default with O.strategy; negation; profile = true; trace }

let sum f rows = List.fold_left (fun acc r -> acc + f r) 0 rows

(* -------------------------------------------------------------------- *)
(* Reconciliation: the profile rows are an exact decomposition of the
   global counters.  Rule firings happen only inside [with_rule] scopes
   and every probe / scan / derivation site records both, so the row sums
   must equal the totals — for every strategy.  (The one exception,
   nested negation under [Tabled], is exercised separately below.) *)

let reconcile name report =
  let p = report.S.profile in
  let c = report.S.counters in
  check tbool (name ^ ": profile active") true (P.is_active p);
  check tbool (name ^ ": has rule rows") true (P.rules p <> []);
  check tint
    (name ^ ": rule firings sum to the total")
    c.C.firings
    (sum (fun (r : P.rule_row) -> r.P.firings) (P.rules p));
  check tint
    (name ^ ": rule derivations sum to the total")
    c.C.facts_derived
    (sum (fun (r : P.rule_row) -> r.P.derived) (P.rules p));
  check tint
    (name ^ ": predicate probes sum to the total")
    c.C.probes
    (sum (fun (r : P.pred_row) -> r.P.p_probes) (P.preds p));
  check tint
    (name ^ ": predicate scans sum to the total")
    c.C.scanned
    (sum (fun (r : P.pred_row) -> r.P.p_scanned) (P.preds p));
  check tint
    (name ^ ": predicate derivations sum to the total")
    c.C.facts_derived
    (sum (fun (r : P.pred_row) -> r.P.p_derived) (P.preds p));
  check tint
    (name ^ ": predicate merge steps sum to the total")
    c.C.merge_steps
    (sum (fun (r : P.pred_row) -> r.P.p_merge_steps) (P.preds p));
  check tint
    (name ^ ": predicate gallops sum to the total")
    c.C.gallops
    (sum (fun (r : P.pred_row) -> r.P.p_gallops) (P.preds p))

let test_rows_reconcile_every_strategy () =
  let program = W.same_generation ~layers:4 ~width:5 in
  let query = atom "sg(0, X)" in
  List.iter
    (fun strategy ->
      let report = run_exn ~options:(profiled strategy) program query in
      reconcile (O.strategy_name strategy) report)
    O.all_strategies

let test_rows_reconcile_negation_modes () =
  (* a stratified program with negation, under each fixpoint family *)
  let p =
    program
      "reach(X) :- source(X).\n\
       reach(Y) :- reach(X), edge(X, Y).\n\
       dead(X) :- node(X), not reach(X).\n\
       node(0). node(1). node(2). node(3).\n\
       source(0). edge(0, 1). edge(1, 2)."
  in
  let query = atom "dead(X)" in
  List.iter
    (fun negation ->
      let options = profiled ~negation O.Seminaive in
      let report = run_exn ~options p query in
      reconcile (O.negation_name negation) report)
    [ O.Auto; O.Conditional; O.Well_founded ]

(* -------------------------------------------------------------------- *)
(* Round and stratum rows decompose the derivation totals too *)

let test_round_rows_seminaive () =
  let report =
    run_exn
      ~options:(profiled O.Seminaive)
      (W.ancestor_chain 30) (atom "anc(0, X)")
  in
  let p = report.S.profile in
  check tbool "rounds recorded" true (P.rounds p <> []);
  check tint "round derivations sum to the total"
    report.S.counters.C.facts_derived
    (sum (fun (r : P.round_row) -> r.P.round_derived) (P.rounds p));
  let rounds = List.map (fun (r : P.round_row) -> r.P.round) (P.rounds p) in
  check tbool "rounds numbered 1.." true
    (rounds = List.init (List.length rounds) (fun i -> i + 1))

let test_stratum_rows_stratified () =
  let p =
    program
      "reach(X) :- source(X).\n\
       reach(Y) :- reach(X), edge(X, Y).\n\
       dead(X) :- node(X), not reach(X).\n\
       node(0). node(1). node(2).\n\
       source(0). edge(0, 1)."
  in
  let report = run_exn ~options:(profiled O.Seminaive) p (atom "dead(X)") in
  let prof = report.S.profile in
  check tbool "at least two strata" true (List.length (P.strata prof) >= 2);
  check tint "stratum derivations sum to the total"
    report.S.counters.C.facts_derived
    (sum (fun (s : P.stratum_row) -> s.P.s_derived) (P.strata prof));
  check tint "stratum rounds sum to the round count"
    (List.length (P.rounds prof))
    (sum (fun (s : P.stratum_row) -> s.P.s_rounds) (P.strata prof))

(* -------------------------------------------------------------------- *)
(* The JSON schema is pinned: future PRs may add keys only knowingly *)

let test_report_json_schema () =
  let report =
    run_exn
      ~options:(profiled O.Alexander)
      (W.ancestor_chain 10) (atom "anc(0, X)")
  in
  let json = S.report_json ~query:(atom "anc(0, X)") report in
  check tstrings "report keys"
    [ "schema_version"; "query"; "strategy"; "sips"; "negation"; "subsume";
      "evaluator";
      "status"; "exhausted_reason"; "answers"; "undefined"; "wall_time_s";
      "minor_words"; "rewritten"; "plan"; "parallel"; "totals"; "profile"
    ]
    (J.keys json);
  (match J.member "plan" json with
  | Some plan -> (
    check tstrings "plan keys" [ "compiled"; "sip"; "rules" ] (J.keys plan);
    match J.member "rules" plan with
    | Some (J.List (first :: _)) ->
      check tstrings "plan rule keys"
        [ "rule"; "variant"; "order"; "steps" ]
        (J.keys first)
    | _ -> Alcotest.fail "no plan rules")
  | None -> Alcotest.fail "no plan");
  (match J.member "totals" json with
  | Some totals ->
    check tstrings "totals keys"
      [ "facts_derived"; "firings"; "probes"; "scanned"; "iterations";
        "merge_steps"; "gallops"; "subsumed"
      ]
      (J.keys totals)
  | None -> Alcotest.fail "no totals");
  match J.member "profile" json with
  | None -> Alcotest.fail "no profile"
  | Some profile -> (
    check tstrings "profile keys"
      [ "enabled"; "rules"; "predicates"; "strata"; "rounds" ]
      (J.keys profile);
    match J.member "rules" profile with
    | Some (J.List (first :: _)) ->
      check tstrings "rule row keys"
        [ "rule"; "evals"; "firings"; "probes"; "scanned"; "derived";
          "merge_steps"; "gallops"; "subsumed"; "time_s"
        ]
        (J.keys first)
    | _ -> Alcotest.fail "no rule rows")

let test_schema_version_is_6 () =
  let report =
    run_exn ~options:O.default (W.ancestor_chain 5) (atom "anc(0, X)")
  in
  let json = S.report_json ~query:(atom "anc(0, X)") report in
  check tbool "schema_version 6" true
    (J.member "schema_version" json = Some (J.Int 6));
  (* serial runs report the parallel block as null *)
  check tbool "parallel null when serial" true
    (J.member "parallel" json = Some J.Null)

(* -------------------------------------------------------------------- *)
(* Trace sinks *)

let test_trace_lines () =
  let lines = ref [] in
  let trace line = lines := line :: !lines in
  let _ =
    run_exn
      ~options:(profiled ~trace O.Seminaive)
      (W.ancestor_chain 20) (atom "anc(0, X)")
  in
  let lines = List.rev !lines in
  check tbool "trace lines emitted" true (lines <> []);
  let has sub =
    List.exists
      (fun l ->
        let n = String.length sub and m = String.length l in
        let rec go i = i + n <= m && (String.sub l i n = sub || go (i + 1)) in
        go 0)
      lines
  in
  check tbool "round lines" true (has "round");
  check tbool "fact counts" true (has "fact(s)")

let test_trace_implies_profile () =
  (* a trace sink alone activates collection, even with [profile = false] *)
  let options =
    { O.default with O.strategy = O.Seminaive; trace = Some ignore }
  in
  let report = run_exn ~options (W.ancestor_chain 5) (atom "anc(0, X)") in
  check tbool "profile active under trace" true
    (P.is_active report.S.profile)

(* -------------------------------------------------------------------- *)
(* The default is the inactive sentinel: no rows, no overhead *)

let test_default_is_inactive () =
  let report =
    run_exn ~options:O.default (W.ancestor_chain 10) (atom "anc(0, X)")
  in
  let p = report.S.profile in
  check tbool "inactive" false (P.is_active p);
  check tbool "no rule rows" true (P.rules p = []);
  check tbool "no pred rows" true (P.preds p = []);
  check tbool "no round rows" true (P.rounds p = []);
  check tbool "no stratum rows" true (P.strata p = []);
  check tbool "json says disabled" true
    (J.member "enabled" (P.to_json p) = Some (J.Bool false))

(* -------------------------------------------------------------------- *)
(* Exceptional exit still records the work done so far *)

let test_with_rule_records_on_exception () =
  let p = P.create () in
  let cnt = C.create () in
  let rule = Datalog_parser.Parser.rule_of_string "p(X) :- q(X)." in
  (try
     P.with_rule p cnt rule (fun () ->
         cnt.C.firings <- cnt.C.firings + 3;
         failwith "abort")
   with Failure _ -> ());
  match P.rules p with
  | [ row ] ->
    check tint "eval recorded" 1 row.P.evals;
    check tint "partial firings attributed" 3 row.P.firings
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let suite =
  [ ( "profile",
      [ Alcotest.test_case "rows reconcile (every strategy)" `Slow
          test_rows_reconcile_every_strategy;
        Alcotest.test_case "rows reconcile (negation modes)" `Quick
          test_rows_reconcile_negation_modes;
        Alcotest.test_case "round rows (seminaive)" `Quick
          test_round_rows_seminaive;
        Alcotest.test_case "stratum rows (stratified)" `Quick
          test_stratum_rows_stratified;
        Alcotest.test_case "report_json schema pinned" `Quick
          test_report_json_schema;
        Alcotest.test_case "schema_version is 6" `Quick
          test_schema_version_is_6;
        Alcotest.test_case "trace lines" `Quick test_trace_lines;
        Alcotest.test_case "trace implies profiling" `Quick
          test_trace_implies_profile;
        Alcotest.test_case "default inactive" `Quick test_default_is_inactive;
        Alcotest.test_case "with_rule records on exception" `Quick
          test_with_rule_records_on_exception
      ] )
  ]
