(* Storage tests: tuples, relations (with index consistency), databases. *)

open Datalog_ast
open Datalog_storage

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let tup l = Array.of_list (List.map Code.of_int l)

let test_tuple_equal_hash () =
  let a = tup [ 1; 2 ] and b = tup [ 1; 2 ] and c = tup [ 2; 1 ] in
  check tbool "equal" true (Tuple.equal a b);
  check tbool "hash agrees" true (Tuple.hash a = Tuple.hash b);
  check tbool "different" false (Tuple.equal a c);
  check tbool "width matters" false (Tuple.equal a (tup [ 1; 2; 3 ]))

let test_tuple_project () =
  let t = tup [ 10; 20; 30 ] in
  check tbool "projection" true (Tuple.equal (Tuple.project [| 2; 0 |] t) (tup [ 30; 10 ]))

let test_relation_insert_dedup () =
  let r = Relation.create 2 in
  check tbool "first insert new" true (Relation.insert r (tup [ 1; 2 ]));
  check tbool "duplicate rejected" false (Relation.insert r (tup [ 1; 2 ]));
  check tint "cardinal" 1 (Relation.cardinal r);
  check tbool "mem" true (Relation.mem r (tup [ 1; 2 ]))

let test_relation_arity_check () =
  let r = Relation.create ~name:"r" 2 in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.insert(r): arity 2, tuple of width 3")
    (fun () -> ignore (Relation.insert r (tup [ 1; 2; 3 ])))

let test_relation_insertion_order () =
  let r = Relation.create 1 in
  List.iter (fun i -> ignore (Relation.insert r (tup [ i ]))) [ 3; 1; 2 ];
  check (Alcotest.list tint) "insertion order preserved" [ 3; 1; 2 ]
    (List.map (fun t -> Code.to_int t.(0))
       (Relation.to_list r))

let test_relation_select () =
  let r = Relation.create 2 in
  List.iter
    (fun (a, b) -> ignore (Relation.insert r (tup [ a; b ])))
    [ (1, 10); (1, 20); (2, 10); (3, 30) ];
  check tint "select col0=1" 2 (List.length (Relation.select r [ (0, Code.of_int 1) ]));
  check tint "select col1=10" 2 (List.length (Relation.select r [ (1, Code.of_int 10) ]));
  check tint "select both" 1
    (List.length (Relation.select r [ (0, Code.of_int 1); (1, Code.of_int 20) ]));
  check tint "select nothing bound = all" 4 (List.length (Relation.select r []));
  check tint "select miss" 0 (List.length (Relation.select r [ (0, Code.of_int 9) ]))

let test_relation_index_maintained_after_insert () =
  let r = Relation.create 2 in
  ignore (Relation.insert r (tup [ 1; 10 ]));
  (* force index creation *)
  ignore (Relation.select r [ (0, Code.of_int 1) ]);
  check tint "one index" 1 (Relation.index_count r);
  (* subsequent inserts must be visible through the existing index *)
  ignore (Relation.insert r (tup [ 1; 20 ]));
  check tint "index sees new tuple" 2
    (List.length (Relation.select r [ (0, Code.of_int 1) ]))

let test_relation_copy_independent () =
  let r = Relation.create 1 in
  ignore (Relation.insert r (tup [ 1 ]));
  let c = Relation.copy r in
  ignore (Relation.insert c (tup [ 2 ]));
  check tint "copy grew" 2 (Relation.cardinal c);
  check tint "original untouched" 1 (Relation.cardinal r)

let test_relation_union_into () =
  let a = Relation.create 1 and b = Relation.create 1 in
  ignore (Relation.insert a (tup [ 1 ]));
  ignore (Relation.insert a (tup [ 2 ]));
  ignore (Relation.insert b (tup [ 2 ]));
  check tint "one new" 1 (Relation.union_into ~src:a ~dst:b);
  check tint "dst has both" 2 (Relation.cardinal b)

let test_database_basics () =
  let db = Database.create () in
  let p = Pred.make "p" 2 in
  check tbool "add new" true (Database.add db p (tup [ 1; 2 ]));
  check tbool "add dup" false (Database.add db p (tup [ 1; 2 ]));
  check tbool "mem" true (Database.mem db p (tup [ 1; 2 ]));
  check tint "cardinal" 1 (Database.cardinal db p);
  check tint "total" 1 (Database.total_facts db);
  check tint "missing pred card" 0 (Database.cardinal db (Pred.make "q" 1))

let test_database_of_facts_atoms () =
  let atoms =
    [ Atom.app "e" [ Term.int 1; Term.int 2 ];
      Atom.app "e" [ Term.int 2; Term.int 3 ];
      Atom.app "n" [ Term.sym "x" ]
    ]
  in
  let db = Database.of_facts atoms in
  check tint "two preds" 2 (List.length (Database.preds db));
  check tbool "atom mem" true
    (Database.mem_atom db (Atom.app "e" [ Term.int 2; Term.int 3 ]));
  check tbool "atom not mem" false
    (Database.mem_atom db (Atom.app "e" [ Term.int 3; Term.int 2 ]))

let test_database_copy_independent () =
  let db = Database.create () in
  ignore (Database.add_atom db (Atom.app "p" [ Term.int 1 ]));
  let c = Database.copy db in
  ignore (Database.add_atom c (Atom.app "p" [ Term.int 2 ]));
  check tint "copy grew" 2 (Database.cardinal c (Pred.make "p" 1));
  check tint "original untouched" 1 (Database.cardinal db (Pred.make "p" 1))

(* Property: select over any binding pattern agrees with a linear scan. *)
let prop_select_agrees_with_scan =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 60 in
      let* tuples = list_repeat n (pair (int_bound 5) (int_bound 5)) in
      let* q = pair (int_bound 5) (int_bound 5) in
      let* mask = int_range 0 3 in
      return (tuples, q, mask))
  in
  QCheck.Test.make ~name:"Relation.select agrees with linear scan" ~count:300
    (QCheck.make gen) (fun (tuples, (qa, qb), mask) ->
      let r = Relation.create 2 in
      List.iter (fun (a, b) -> ignore (Relation.insert r (tup [ a; b ]))) tuples;
      let bindings =
        (if mask land 1 <> 0 then [ (0, Code.of_int qa) ] else [])
        @ if mask land 2 <> 0 then [ (1, Code.of_int qb) ] else []
      in
      let selected = Relation.select r bindings |> List.sort Tuple.compare in
      let scanned =
        Relation.to_list r
        |> List.filter (fun t ->
               List.for_all (fun (i, v) -> Code.equal t.(i) v) bindings)
        |> List.sort Tuple.compare
      in
      List.equal Tuple.equal selected scanned)

(* Property: insert-then-query through an index created at an arbitrary
   point in the insertion sequence stays consistent. *)
let prop_index_creation_point_irrelevant =
  let gen =
    QCheck.Gen.(
      let* before = list_size (int_bound 20) (pair (int_bound 4) (int_bound 4)) in
      let* after = list_size (int_bound 20) (pair (int_bound 4) (int_bound 4)) in
      let* key = int_bound 4 in
      return (before, after, key))
  in
  QCheck.Test.make ~name:"index creation point is irrelevant" ~count:300
    (QCheck.make gen) (fun (before, after, key) ->
      let with_early = Relation.create 2 in
      ignore (Relation.select with_early [ (0, Code.of_int key) ]);
      let with_late = Relation.create 2 in
      List.iter
        (fun (a, b) ->
          ignore (Relation.insert with_early (tup [ a; b ]));
          ignore (Relation.insert with_late (tup [ a; b ])))
        (before @ after);
      let se = Relation.select with_early [ (0, Code.of_int key) ] in
      let sl = Relation.select with_late [ (0, Code.of_int key) ] in
      List.sort Tuple.compare se = List.sort Tuple.compare sl)

(* Property: select, iteration order and cardinality survive arbitrary
   insert/remove churn — exercising tombstoning, amortised compaction
   and index-bucket removal together against a list model. *)
let prop_select_under_churn =
  let gen =
    QCheck.Gen.(
      let* ops =
        list_size (int_range 0 150) (triple bool (int_bound 4) (int_bound 4))
      in
      let* q = pair (int_bound 4) (int_bound 4) in
      let* mask = int_range 0 3 in
      return (ops, q, mask))
  in
  QCheck.Test.make ~name:"select agrees with scan under insert/remove churn"
    ~count:300 (QCheck.make gen) (fun (ops, (qa, qb), mask) ->
      let r = Relation.create 2 in
      (* warm an index so bucket maintenance runs during the churn *)
      ignore (Relation.select r [ (0, Code.of_int 0) ]);
      let consistent = ref true in
      let model =
        List.fold_left
          (fun model (ins, a, b) ->
            let t = tup [ a; b ] in
            let present = List.exists (Tuple.equal t) model in
            if ins then begin
              if Relation.insert r t = present then consistent := false;
              if present then model else model @ [ t ]
            end
            else begin
              if Relation.remove r t <> present then consistent := false;
              List.filter (fun u -> not (Tuple.equal t u)) model
            end)
          [] ops
      in
      let bindings =
        (if mask land 1 <> 0 then [ (0, Code.of_int qa) ] else [])
        @ if mask land 2 <> 0 then [ (1, Code.of_int qb) ] else []
      in
      let selected = Relation.select r bindings |> List.sort Tuple.compare in
      let expected =
        List.filter
          (fun t -> List.for_all (fun (i, v) -> Code.equal t.(i) v) bindings)
          model
        |> List.sort Tuple.compare
      in
      !consistent
      && List.equal Tuple.equal selected expected
      && List.equal Tuple.equal (Relation.to_list r) model
      && Relation.cardinal r = List.length model)

(* Regression: duplicate bindings on one column used to corrupt the index
   key (the column list is sorted, the probe key built positionally).
   Equal duplicates must be redundant; conflicting ones match nothing. *)
let test_relation_select_duplicate_bindings () =
  let r = Relation.create 2 in
  List.iter
    (fun (a, b) -> ignore (Relation.insert r (tup [ a; b ])))
    [ (1, 10); (1, 20); (2, 10) ];
  let c1 = Code.of_int 1 and c2 = Code.of_int 2 and c10 = Code.of_int 10 in
  check tint "equal duplicates are redundant" 2
    (List.length (Relation.select r [ (0, c1); (0, c1) ]));
  check tint "equal duplicates mixed with another column" 1
    (List.length (Relation.select r [ (0, c1); (1, c10); (0, c1) ]));
  check tint "conflicting duplicates match nothing" 0
    (List.length (Relation.select r [ (0, c1); (0, c2) ]));
  let ts, n = Relation.select_count r [ (1, c10); (1, Code.of_int 20) ] in
  check tint "select_count conflict: empty" 0 (List.length ts);
  check tint "select_count conflict: zero count" 0 n;
  (* the dup query must not have polluted the index for the clean one *)
  check tint "index still consistent after dup queries" 2
    (List.length (Relation.select r [ (0, c1) ]))

let test_relation_sorted_view_order () =
  let r = Relation.create 2 in
  let a = Relation.prepare_sorted [ 0 ] in
  List.iter
    (fun (x, y) -> ignore (Relation.insert r (tup [ x; y ])))
    [ (1, 100); (2, 200); (1, 300) ];
  let rows v =
    let w = Relation.sorted_view r v in
    List.init w.Relation.sv_len (fun i ->
        let t = w.Relation.sv_rows.(i) in
        (Code.to_int t.(0), Code.to_int t.(1)))
  in
  check
    (Alcotest.list (Alcotest.pair tint tint))
    "sorted by key, newest first within a key"
    [ (1, 300); (1, 100); (2, 200) ]
    (rows a);
  (* inserts since the last view take the incremental sorted-run path *)
  List.iter
    (fun (x, y) -> ignore (Relation.insert r (tup [ x; y ])))
    [ (1, 400); (0, 500) ];
  check
    (Alcotest.list (Alcotest.pair tint tint))
    "merged run: still sorted, run rows win ties"
    [ (0, 500); (1, 400); (1, 300); (1, 100); (2, 200) ]
    (rows a);
  (* a removal marks the projection stale and forces a rebuild *)
  ignore (Relation.remove r (tup [ 1; 100 ]));
  check
    (Alcotest.list (Alcotest.pair tint tint))
    "rebuild after removal"
    [ (0, 500); (1, 400); (1, 300); (2, 200) ]
    (rows a);
  check tint "one sorted projection" 1 (Relation.sorted_index_count r);
  let v = Relation.sorted_view r a in
  check tbool "column-major keys mirror the rows" true
    (Array.length v.sv_keys = 1
    && List.for_all
         (fun i -> Code.equal v.sv_keys.(0).(i) v.sv_rows.(i).(0))
         (List.init v.sv_len Fun.id))

(* Property: hash probes and sorted views stay consistent with a list
   model under interleaved insert/remove churn, with both index kinds
   created mid-stream and a deterministic tail that is guaranteed to
   cross the amortised-compaction threshold. *)
let prop_sorted_and_probe_under_churn =
  let gen =
    QCheck.Gen.(
      let* ops =
        list_size (int_range 0 200) (triple (int_bound 3) (int_bound 9) (int_bound 9))
      in
      let* q = int_bound 9 in
      return (ops, q))
  in
  QCheck.Test.make ~name:"probe and sorted_view agree with model under churn"
    ~count:100 (QCheck.make gen) (fun (ops, q) ->
      let r = Relation.create 2 in
      let acc = Relation.prepare [ 0 ] in
      let sacc = Relation.prepare_sorted [ 0 ] in
      (* model holds the live tuples in insertion order *)
      let model = ref [] in
      let ok = ref true in
      let check_now key =
        let c = Code.of_int key in
        let bucket, n = Relation.probe r acc [| c |] in
        let expect = List.filter (fun t -> Code.equal t.(0) c) !model in
        (* hash buckets list matches newest first *)
        if n <> List.length expect
           || not (List.equal Tuple.equal bucket (List.rev expect))
        then ok := false;
        let v = Relation.sorted_view r sacc in
        let rows =
          List.init v.Relation.sv_len (fun i -> v.Relation.sv_rows.(i))
        in
        let expect_sorted =
          (* stable sort of the newest-first model = sorted with
             newest-first ties, exactly the view's contract *)
          List.stable_sort
            (fun a b -> Code.compare a.(0) b.(0))
            (List.rev !model)
        in
        if not (List.equal Tuple.equal rows expect_sorted) then ok := false;
        List.iteri
          (fun i t ->
            if not (Code.equal v.sv_keys.(0).(i) t.(0)) then ok := false)
          rows
      in
      let apply (k, a, b) =
        let t = tup [ a; b ] in
        let present = List.exists (Tuple.equal t) !model in
        match k with
        | 0 | 1 ->
          if Relation.insert r t = present then ok := false;
          if not present then model := !model @ [ t ]
        | 2 ->
          if Relation.remove r t <> present then ok := false;
          model := List.filter (fun u -> not (Tuple.equal t u)) !model
        | _ -> check_now a
      in
      List.iter apply ops;
      check_now q;
      (* deterministic tail: 120 fresh tuples in, then all out again,
         which forces filled > 64 and filled > 2 * size (the model never
         exceeds 100 live tuples), i.e. the compaction threshold *)
      let extra = List.init 120 (fun i -> tup [ 100 + i; i ]) in
      List.iter (fun t -> ignore (Relation.insert r t)) extra;
      model := !model @ extra;
      check_now 105;
      List.iter (fun t -> ignore (Relation.remove r t)) extra;
      model :=
        List.filter (fun u -> Code.to_int u.(0) < 100) !model;
      check_now q;
      (* a projection created after all that churn must agree too *)
      let late = Relation.prepare_sorted [ 0; 1 ] in
      let v = Relation.sorted_view r late in
      let rows =
        List.init v.Relation.sv_len (fun i -> v.Relation.sv_rows.(i))
      in
      let expect =
        List.stable_sort
          (fun a b ->
            let c = Code.compare a.(0) b.(0) in
            if c <> 0 then c else Code.compare a.(1) b.(1))
          (List.rev !model)
      in
      !ok && List.equal Tuple.equal rows expect)

let test_relation_dead_buckets_removed () =
  let r = Relation.create 2 in
  List.iter
    (fun i -> ignore (Relation.insert r (tup [ i; i * 2 ])))
    (List.init 50 Fun.id);
  ignore (Relation.select r [ (0, Code.of_int 7) ]);
  check tbool "buckets live while tuples live" true
    (Relation.bucket_count r > 0);
  List.iter
    (fun i -> ignore (Relation.remove r (tup [ i; i * 2 ])))
    (List.init 50 Fun.id);
  check tint "emptied buckets are removed, not left dead" 0
    (Relation.bucket_count r);
  check tint "relation empty" 0 (Relation.cardinal r);
  check tbool "reusable after the churn" true
    (Relation.insert r (tup [ 1; 2 ]));
  check tint "select still consistent" 1
    (List.length (Relation.select r [ (0, Code.of_int 1) ]))

let test_relation_compaction_preserves_order () =
  let r = Relation.create 1 in
  List.iter (fun i -> ignore (Relation.insert r (tup [ i ]))) (List.init 300 Fun.id);
  (* removing half of 300 crosses the filled > 2 * size threshold *)
  List.iter
    (fun i -> if i mod 2 = 0 then ignore (Relation.remove r (tup [ i ])))
    (List.init 300 Fun.id);
  check tint "cardinal after compaction" 150 (Relation.cardinal r);
  check (Alcotest.list tint) "odd survivors in insertion order"
    (List.init 150 (fun i -> (2 * i) + 1))
    (List.map
       (fun t -> Code.to_int t.(0))
       (Relation.to_list r));
  check tbool "insert after compaction" true (Relation.insert r (tup [ 1000 ]));
  check tbool "mem after compaction" true (Relation.mem r (tup [ 1000 ]));
  check tbool "removed stay removed" false (Relation.mem r (tup [ 0 ]))

let suite =
  [ ( "storage",
      [ Alcotest.test_case "tuple equal/hash" `Quick test_tuple_equal_hash;
        Alcotest.test_case "tuple project" `Quick test_tuple_project;
        Alcotest.test_case "relation dedup" `Quick test_relation_insert_dedup;
        Alcotest.test_case "relation arity" `Quick test_relation_arity_check;
        Alcotest.test_case "insertion order" `Quick test_relation_insertion_order;
        Alcotest.test_case "select" `Quick test_relation_select;
        Alcotest.test_case "select duplicate bindings" `Quick
          test_relation_select_duplicate_bindings;
        Alcotest.test_case "sorted view order" `Quick
          test_relation_sorted_view_order;
        Alcotest.test_case "index maintenance" `Quick
          test_relation_index_maintained_after_insert;
        Alcotest.test_case "relation copy" `Quick test_relation_copy_independent;
        Alcotest.test_case "union_into" `Quick test_relation_union_into;
        Alcotest.test_case "dead buckets removed" `Quick
          test_relation_dead_buckets_removed;
        Alcotest.test_case "compaction preserves order" `Quick
          test_relation_compaction_preserves_order;
        Alcotest.test_case "database basics" `Quick test_database_basics;
        Alcotest.test_case "database of_facts" `Quick test_database_of_facts_atoms;
        Alcotest.test_case "database copy" `Quick test_database_copy_independent
      ] );
    ( "storage:properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_select_agrees_with_scan;
          prop_index_creation_point_irrelevant;
          prop_select_under_churn;
          prop_sorted_and_probe_under_churn
        ] )
  ]
