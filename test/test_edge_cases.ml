(* Edge cases across the whole stack: degenerate programs, unusual
   queries, boundary shapes the main suites do not hit. *)

open Datalog_ast
module S = Alexander.Solve
module O = Alexander.Options
module W = Alexander.Workloads

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let prog = Datalog_parser.Parser.program_of_string
let atom = Datalog_parser.Parser.atom_of_string

let answers ?(strategy = O.Seminaive) ?(negation = O.Auto) program q =
  let options = { O.default with O.strategy; negation } in
  (S.run_exn ~options program (atom q)).S.answers

(* ---------------- degenerate programs ---------------- *)

let test_empty_program () =
  let program = Program.empty in
  List.iter
    (fun strategy ->
      let options = { O.default with O.strategy } in
      match S.run ~options program (atom "p(X)") with
      | Ok report -> check tint "no answers" 0 (List.length report.S.answers)
      | Error e -> Alcotest.fail (Alexander.Errors.message e))
    O.all_strategies

let test_facts_only_program () =
  let program = prog "e(1, 2). e(2, 3)." in
  check tint "edb lookup" 1 (List.length (answers program "e(1, X)"))

let test_rule_with_no_facts () =
  let program = prog "p(X) :- e(X)." in
  List.iter
    (fun strategy ->
      let options = { O.default with O.strategy } in
      match S.run ~options program (atom "p(X)") with
      | Ok report -> check tint "empty fixpoint" 0 (List.length report.S.answers)
      | Error e -> Alcotest.fail (Alexander.Errors.message e))
    O.all_strategies

let test_self_loop_edge () =
  let program =
    Program.make
      ~facts:[ Atom.app "edge" [ Term.int 7; Term.int 7 ] ]
      (W.ancestor_rules ())
  in
  List.iter
    (fun strategy ->
      check tint
        (O.strategy_name strategy ^ ": self loop")
        1
        (List.length
           (answers ~strategy program "anc(7, X)")))
    [ O.Seminaive; O.Magic; O.Alexander; O.Tabled ]

(* ---------------- unusual queries ---------------- *)

let test_all_free_magic_query () =
  (* an all-free query degenerates magic to full evaluation but must stay
     correct (0-ary magic seed) *)
  let program = W.ancestor_chain 6 in
  let base = answers program "anc(X, Y)" in
  check tint "full closure" 21 (List.length base);
  List.iter
    (fun strategy ->
      check tbool (O.strategy_name strategy ^ ": all free") true
        (answers ~strategy program "anc(X, Y)" = base))
    [ O.Magic; O.Supplementary; O.Supplementary_idb; O.Alexander; O.Tabled ]

let test_all_bound_queries () =
  let program = W.same_generation ~layers:3 ~width:3 in
  List.iter
    (fun strategy ->
      check tint
        (O.strategy_name strategy ^ ": true ground goal")
        1
        (List.length (answers ~strategy program "sg(0, 0)"));
      check tint
        (O.strategy_name strategy ^ ": false ground goal")
        0
        (List.length (answers ~strategy program "sg(0, 100)")))
    [ O.Seminaive; O.Magic; O.Supplementary; O.Alexander; O.Tabled ]

let test_repeated_constant_args () =
  let program = prog "p(X, Y, Z) :- e(X, Y), e(Y, Z). e(1, 1). e(1, 2)." in
  (* query with the same constant twice *)
  List.iter
    (fun strategy ->
      check tint
        (O.strategy_name strategy ^ ": p(1,1,X)")
        2
        (List.length (answers ~strategy program "p(1, 1, X)")))
    [ O.Seminaive; O.Magic; O.Alexander ]

let test_query_variable_repeated_three_times () =
  let program = prog "t(X, Y, Z) :- a(X), b(Y), c(Z). a(1). b(1). c(1). b(2)." in
  check tint "t(W,W,W)" 1 (List.length (answers program "t(W, W, W)"))

(* ---------------- rules with only built-ins after one atom ------------ *)

let test_comparison_chains () =
  let program =
    prog "mid(X) :- n(X), X > 2, X < 7, X != 5. n(1). n(3). n(5). n(6). n(9)."
  in
  check tint "filtered to {3, 6}" 2 (List.length (answers program "mid(X)"))

let test_eq_alias_in_rule () =
  let program = prog "pair(X, Y) :- e(X), Y = X. e(1). e(2)." in
  let result = answers program "pair(X, Y)" in
  check tint "diagonal" 2 (List.length result);
  check tbool "aliased" true
    (List.for_all (fun t -> Code.equal t.(0) t.(1)) result)

let test_cmp_between_symbols () =
  (* ordering comparisons on symbols follow Value.compare (by intern id);
     equality/inequality are the portable ones *)
  let program = prog "diff(X, Y) :- e(X), e(Y), X != Y. e(a). e(b)." in
  check tint "two ordered pairs" 2 (List.length (answers program "diff(X, Y)"))

(* ---------------- mutual recursion ---------------- *)

let test_mutual_recursion () =
  let program =
    prog
      "even_path(X, Y) :- edge(X, Z), odd_path(Z, Y).\n\
       odd_path(X, Y) :- edge(X, Y).\n\
       odd_path(X, Y) :- edge(X, Z), even_path(Z, Y).\n\
       edge(0, 1). edge(1, 2). edge(2, 3). edge(3, 4)."
  in
  let odd = answers program "odd_path(0, X)" in
  let even = answers program "even_path(0, X)" in
  (* paths from 0 of odd length end at 1, 3; even length at 2, 4 *)
  check tint "odd ends" 2 (List.length odd);
  check tint "even ends" 2 (List.length even);
  List.iter
    (fun strategy ->
      check tbool
        (O.strategy_name strategy ^ ": mutual recursion")
        true
        (answers ~strategy program "odd_path(0, X)" = odd))
    [ O.Magic; O.Supplementary; O.Supplementary_idb; O.Alexander; O.Tabled ]

let test_long_chain_deep_recursion () =
  (* exercise many fixpoint rounds *)
  let program = W.ancestor_chain 1000 in
  check tint "answers from 990" 10
    (List.length (answers ~strategy:O.Alexander program "anc(990, X)"))

(* ---------------- negation corners ---------------- *)

let test_negation_of_empty_relation () =
  let program = prog "ok(X) :- n(X), not bad(X). bad(X) :- b(X). n(1). n(2)." in
  (* bad/1 has a rule but no supporting facts: everything is ok *)
  check tint "all pass" 2 (List.length (answers program "ok(X)"))

let test_double_negation_via_two_preds () =
  let program =
    prog
      "visible(X) :- n(X), not hidden(X).\n\
       hidden(X) :- n(X), not shown(X).\n\
       shown(1). n(1). n(2)."
  in
  (* hidden = {2}; visible = {1} *)
  check tint "one visible" 1 (List.length (answers program "visible(X)"));
  check tbool "it is 1" true
    (List.hd (answers program "visible(X)") = [| Code.of_int 1 |])

let test_negated_zero_arity () =
  let program = prog "go :- ready, not blocked. ready." in
  check tint "fires" 1 (List.length (answers program "go"));
  let program2 = prog "go :- ready, not blocked. ready. blocked." in
  check tint "blocked" 0 (List.length (answers program2 "go"))

(* ---------------- parser / printer corners ---------------- *)

let test_parse_deeply_nested_terms_not_supported () =
  (* function symbols are not part of the language: f(g(x)) must fail *)
  match Datalog_parser.Parser.parse_string "p(f(g)) :- q." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested terms must be rejected"

let test_parse_big_integers () =
  let program = prog "big(1073741823). big(-1073741823)." in
  check tint "two facts" 2 (Program.num_facts program)

let test_print_parse_random_programs () =
  (* deterministic round-trip over the generator's output *)
  let gen = QCheck.Gen.generate ~rand:(Random.State.make [| 7 |]) ~n:20
      Gen.positive_program_gen
  in
  List.iter
    (fun program ->
      let printed = Format.asprintf "%a" Program.pp program in
      let reparsed = Datalog_parser.Parser.program_of_string printed in
      check tbool "round-trip" true
        (List.equal Rule.equal (Program.rules program) (Program.rules reparsed)
        && List.equal Atom.equal (Program.facts program)
             (Program.facts reparsed)))
    gen

(* ---------------- report invariants ---------------- *)

let test_report_answers_sorted_and_unique () =
  let program = W.ancestor_tree ~depth:3 ~fanout:3 in
  List.iter
    (fun strategy ->
      let options = { O.default with O.strategy } in
      let report = S.run_exn ~options program (atom "anc(0, X)") in
      let sorted =
        List.sort_uniq Datalog_storage.Tuple.compare report.S.answers
      in
      check tbool
        (O.strategy_name strategy ^ ": sorted unique answers")
        true
        (report.S.answers = sorted))
    O.all_strategies

let suite =
  [ ( "edge-cases",
      [ Alcotest.test_case "empty program" `Quick test_empty_program;
        Alcotest.test_case "facts only" `Quick test_facts_only_program;
        Alcotest.test_case "rule without facts" `Quick test_rule_with_no_facts;
        Alcotest.test_case "self loop" `Quick test_self_loop_edge;
        Alcotest.test_case "all-free magic query" `Quick test_all_free_magic_query;
        Alcotest.test_case "all-bound queries" `Quick test_all_bound_queries;
        Alcotest.test_case "repeated constants" `Quick test_repeated_constant_args;
        Alcotest.test_case "thrice-repeated variable" `Quick
          test_query_variable_repeated_three_times;
        Alcotest.test_case "comparison chains" `Quick test_comparison_chains;
        Alcotest.test_case "= alias" `Quick test_eq_alias_in_rule;
        Alcotest.test_case "symbol comparisons" `Quick test_cmp_between_symbols;
        Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
        Alcotest.test_case "deep recursion" `Slow test_long_chain_deep_recursion;
        Alcotest.test_case "negation of empty" `Quick
          test_negation_of_empty_relation;
        Alcotest.test_case "double negation" `Quick
          test_double_negation_via_two_preds;
        Alcotest.test_case "negated zero arity" `Quick test_negated_zero_arity;
        Alcotest.test_case "no nested terms" `Quick
          test_parse_deeply_nested_terms_not_supported;
        Alcotest.test_case "big integers" `Quick test_parse_big_integers;
        Alcotest.test_case "print/parse random" `Quick
          test_print_parse_random_programs;
        Alcotest.test_case "sorted answers" `Quick
          test_report_answers_sorted_and_unique
      ] )
  ]
