(* Quantified formula queries (the constructive-domain-independence
   application). *)

open Datalog_ast
module F = Alexander.Formula
module O = Alexander.Options

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let prog = Datalog_parser.Parser.program_of_string
let a = Datalog_parser.Parser.atom_of_string
let v = Term.var

let company =
  prog
    "employee(ann). employee(bob). employee(cal). employee(dan).\n\
     assigned(ann, p1). assigned(ann, p2).\n\
     assigned(bob, p1). assigned(bob, p3).\n\
     assigned(cal, p3).\n\
     on_budget(p1). on_budget(p2).\n\
     senior(ann). senior(cal)."

let names tuples =
  List.map
    (fun t ->
      match Code.to_value t.(0) with Value.Sym s -> Symbol.name s | _ -> "?")
    tuples
  |> List.sort String.compare

let eval ?options program f =
  match F.eval ?options program f with
  | Ok (vars, tuples) -> (vars, tuples)
  | Error msg -> Alcotest.failf "formula rejected: %s" msg

let test_conjunction () =
  let f =
    F.conj (F.atom (a "employee(E)")) (F.atom (a "senior(E)"))
  in
  let _, tuples = eval company f in
  check (Alcotest.list Alcotest.string) "senior employees" [ "ann"; "cal" ]
    (names tuples)

let test_negation_ranged () =
  (* employees with no assignment at all *)
  let f =
    F.conj
      (F.atom (a "employee(E)"))
      (F.neg (F.exists [ "P" ] (F.atom (a "assigned(E, P)"))))
  in
  let _, tuples = eval company f in
  check (Alcotest.list Alcotest.string) "unassigned" [ "dan" ] (names tuples)

let test_forall () =
  (* employees all of whose projects are on budget (vacuously includes the
     unassigned) *)
  let f =
    F.conj
      (F.atom (a "employee(E)"))
      (F.forall [ "P" ]
         (F.imp (F.atom (a "assigned(E, P)")) (F.atom (a "on_budget(P)"))))
  in
  let _, tuples = eval company f in
  check (Alcotest.list Alcotest.string) "all on budget" [ "ann"; "dan" ]
    (names tuples)

let test_disjunction () =
  let f =
    F.conj
      (F.atom (a "employee(E)"))
      (F.disj (F.atom (a "senior(E)")) (F.atom (a "assigned(E, p3)")))
  in
  let _, tuples = eval company f in
  check (Alcotest.list Alcotest.string) "senior or on p3"
    [ "ann"; "bob"; "cal" ] (names tuples)

let test_exists_projection () =
  let f = F.exists [ "P" ] (F.atom (a "assigned(E, P)")) in
  let vars, tuples = eval company f in
  check (Alcotest.list Alcotest.string) "free variable" [ "E" ] vars;
  check tint "three assigned employees" 3 (List.length tuples)

let test_comparison_in_formula () =
  let program = prog "score(ann, 80). score(bob, 45). score(cal, 62)." in
  let f =
    F.conj (F.atom (a "score(S, N)")) (F.cmp Literal.Geq (v "N") (Term.int 60))
  in
  let vars, tuples = eval program f in
  check tint "two columns" 2 (List.length vars);
  check tint "two passing" 2 (List.length tuples)

let test_formula_over_idb () =
  (* formulas compose with recursive predicates: nodes that reach 4 but
     not 2 *)
  let program = Alexander.Workloads.ancestor_chain 6 in
  let program =
    Program.make
      ~facts:(Program.facts program @ Program.facts (prog "branch(9, 4)."))
      (Program.rules program
      @ Program.rules (prog "anc(X, Y) :- branch(X, Y)."))
  in
  let f =
    F.conj (F.atom (a "anc(X, 4)")) (F.neg (F.atom (a "anc(X, 2)")))
  in
  let _, tuples = eval program f in
  (* reachers of 4: 0,1,2,3,9; of those, 0 and 1 also reach 2; 2 doesn't
     reach itself; so {2, 3, 9} *)
  check tint "three answers" 3 (List.length tuples)

let test_unranged_negation_rejected () =
  let f = F.neg (F.atom (a "senior(E)")) in
  match F.eval company f with
  | Error msg -> check tbool "explains" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "bare negation is domain dependent"

let test_mismatched_disjunction_rejected () =
  let f = F.disj (F.atom (a "senior(E)")) (F.atom (a "on_budget(P)")) in
  match F.eval company f with
  | Error msg -> check tbool "explains" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "free-variable mismatch must be rejected"

let test_forall_unranged_rejected () =
  (* forall with no positive range for E *)
  let f = F.forall [ "P" ] (F.atom (a "assigned(E, P)")) in
  match F.eval company f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unranged forall must be rejected"

let test_strategies_agree_on_formulas () =
  let f =
    F.conj
      (F.atom (a "employee(E)"))
      (F.forall [ "P" ]
         (F.imp (F.atom (a "assigned(E, P)")) (F.atom (a "on_budget(P)"))))
  in
  let base = snd (eval ~options:{ O.default with O.strategy = O.Seminaive } company f) in
  List.iter
    (fun strategy ->
      let tuples =
        snd (eval ~options:{ O.default with O.strategy } company f)
      in
      check tbool (O.strategy_name strategy ^ " agrees") true (tuples = base))
    [ O.Magic; O.Supplementary_idb; O.Alexander ]

let suite =
  [ ( "formula",
      [ Alcotest.test_case "conjunction" `Quick test_conjunction;
        Alcotest.test_case "ranged negation" `Quick test_negation_ranged;
        Alcotest.test_case "forall" `Quick test_forall;
        Alcotest.test_case "disjunction" `Quick test_disjunction;
        Alcotest.test_case "exists projection" `Quick test_exists_projection;
        Alcotest.test_case "comparisons" `Quick test_comparison_in_formula;
        Alcotest.test_case "over recursive idb" `Quick test_formula_over_idb;
        Alcotest.test_case "bare negation rejected" `Quick
          test_unranged_negation_rejected;
        Alcotest.test_case "disjunction mismatch rejected" `Quick
          test_mismatched_disjunction_rejected;
        Alcotest.test_case "unranged forall rejected" `Quick
          test_forall_unranged_rejected;
        Alcotest.test_case "strategies agree" `Quick
          test_strategies_agree_on_formulas
      ] )
  ]
