(* Test runner: every module contributes a list of alcotest suites. *)

let () =
  Alcotest.run "alexander"
    (Test_ast.suite @ Test_code.suite @ Test_parser.suite @ Test_storage.suite
   @ Test_analysis.suite @ Test_engine.suite @ Test_rewrite.suite
   @ Test_equivalence.suite @ Test_core.suite @ Test_tabled.suite
   @ Test_provenance.suite @ Test_formula.suite @ Test_preprocess.suite
   @ Test_incremental.suite @ Test_io.suite @ Test_multiquery.suite
   @ Test_edge_cases.suite @ Test_limits.suite @ Test_profile.suite
   @ Test_snapshot.suite @ Test_checkpoint.suite @ Test_faults.suite
   @ Test_wal.suite
   @ Test_subsume.suite
   @ Test_plan.suite @ Test_par.suite @ Test_cli.suite @ Test_misc.suite
   @ Test_server.suite @ Test_server_drill.suite)
