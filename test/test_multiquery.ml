(* Multi-query evaluation: one shared rewriting, several seeds. *)

open Datalog_ast
module S = Alexander.Solve
module O = Alexander.Options
module W = Alexander.Workloads

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string

let single options program query =
  (S.run_exn ~options program query).S.answers

let test_batch_matches_singles () =
  let program = W.ancestor_chain 20 in
  let queries =
    List.map atom [ "anc(3, X)"; "anc(10, X)"; "anc(15, X)"; "anc(18, X)" ]
  in
  List.iter
    (fun strategy ->
      let options = { O.default with O.strategy } in
      match S.run_many ~options program queries with
      | Error e -> Alcotest.fail (Alexander.Errors.message e)
      | Ok results ->
        check tint "one result per query" (List.length queries)
          (List.length results);
        List.iter2
          (fun query (q, answers) ->
            check tbool "query preserved" true (Atom.equal q query);
            check tbool
              (O.strategy_name strategy ^ " batch = single")
              true
              (answers = single options program query))
          queries results)
    [ O.Seminaive; O.Magic; O.Supplementary; O.Alexander; O.Tabled ]

let test_mixed_binding_patterns () =
  let program = W.ancestor_chain 12 in
  let queries =
    List.map atom [ "anc(2, X)"; "anc(X, 9)"; "anc(3, 7)"; "anc(11, 2)" ]
  in
  let options = { O.default with O.strategy = O.Alexander } in
  match S.run_many ~options program queries with
  | Error e -> Alcotest.fail (Alexander.Errors.message e)
  | Ok results ->
    List.iter2
      (fun query (_, answers) ->
        check tbool "matches single run" true
          (answers = single options program query))
      queries results

let test_multiple_predicates () =
  let program = W.same_generation ~layers:3 ~width:3 in
  let program =
    Program.make
      ~facts:(Program.facts program)
      (Program.rules program
      @ [ Datalog_parser.Parser.rule_of_string "peer(X, Y) :- sg(X, Y), X != Y." ])
  in
  let queries = List.map atom [ "sg(0, X)"; "peer(0, X)" ] in
  match S.run_many program queries with
  | Error e -> Alcotest.fail (Alexander.Errors.message e)
  | Ok results ->
    List.iter2
      (fun query (_, answers) ->
        check tbool "each predicate answered" true
          (answers = single O.default program query))
      queries results

let test_empty_batch () =
  match S.run_many (W.ancestor_chain 3) [] with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty"
  | Error e -> Alcotest.fail (Alexander.Errors.message e)

let prop_batch_equals_singles =
  QCheck.Test.make ~name:"run_many = n x run on random programs" ~count:30
    (QCheck.pair Gen.arb_positive_program
       (QCheck.make QCheck.Gen.(list_size (int_range 1 4) (int_bound 5))))
    (fun (program, consts) ->
      let queries =
        List.map
          (fun c -> Atom.app "p0" [ Term.int c; Term.var "Q" ])
          consts
      in
      match S.run_many program queries with
      | Error _ -> false
      | Ok results ->
        List.for_all2
          (fun query (_, answers) ->
            answers = single O.default program query)
          queries results)

let suite =
  [ ( "multiquery",
      [ Alcotest.test_case "batch = singles" `Quick test_batch_matches_singles;
        Alcotest.test_case "mixed bindings" `Quick test_mixed_binding_patterns;
        Alcotest.test_case "multiple predicates" `Quick test_multiple_predicates;
        Alcotest.test_case "empty batch" `Quick test_empty_batch
      ] );
    ( "multiquery:properties",
      List.map QCheck_alcotest.to_alcotest [ prop_batch_equals_singles ] )
  ]
