(* The serve loop's guarantees, exercised without sockets where the
   behaviour lives in the supervisor — protocol framing, the adorned
   answer cache, admission control, transactional mutations with durable
   acks, warm recovery — plus an end-to-end scripted session against the
   real binary over a Unix socket, including a restart. *)

open Datalog_ast
open Datalog_storage
module P = Datalog_server.Protocol
module Cache = Datalog_server.Cache
module Sup = Datalog_server.Supervisor
module Json = Datalog_engine.Json

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let atom = Datalog_parser.Parser.atom_of_string
let rule = Datalog_parser.Parser.rule_of_string

let tmpfile () = Filename.temp_file "alexserve" ".snap"
let rm path = try Sys.remove path with Sys_error _ -> ()

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ancestor_program () =
  Program.make
    ~facts:
      [ atom "parent(ann, bob)";
        atom "parent(bob, cal)";
        atom "parent(bob, dan)";
        atom "parent(cal, eve)"
      ]
    [ rule "anc(X, Y) :- parent(X, Y).";
      rule "anc(X, Y) :- parent(X, Z), anc(Z, Y)."
    ]

let negation_program () =
  Program.make
    ~facts:[ atom "node(1)"; atom "node(2)"; atom "node(3)"; atom "bad(2)" ]
    [ rule "safe(X) :- node(X), not bad(X)." ]

let sup_exn ?(config = Sup.default_config) program =
  match Sup.create config program with
  | Ok t -> t
  | Error msg -> Alcotest.fail ("supervisor refused to start: " ^ msg)

let env ?(id = Json.Int 1) ?(budgets = P.no_budgets) ?key request =
  { P.req_id = id; budgets; idem_key = key; request }

let handle t e = fst (Sup.handle t ~now:(Unix.gettimeofday ()) e)

let member name reply =
  match Json.member name reply with
  | Some v -> v
  | None -> Alcotest.fail ("reply lacks field " ^ name ^ ": " ^ Json.to_line reply)

let status reply =
  match member "status" reply with
  | Json.String s -> s
  | _ -> Alcotest.fail "status is not a string"

let answer_count reply =
  match member "count" reply with
  | Json.Int n -> n
  | _ -> Alcotest.fail "count is not an int"

let int_field name reply =
  match member name reply with
  | Json.Int n -> n
  | _ -> Alcotest.fail (name ^ " is not an int")

let cached reply =
  match member "cached" reply with
  | Json.Bool b -> b
  | _ -> Alcotest.fail "cached is not a bool"

let answers reply =
  match member "answers" reply with
  | Json.List items ->
    List.map (function Json.String s -> s | _ -> Alcotest.fail "bad answer")
      items
  | _ -> Alcotest.fail "answers is not a list"

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_parse_roundtrip () =
  (match P.parse {|{"op":"query","id":7,"goal":"anc(ann, X)","timeout_s":2}|} with
  | Ok { P.req_id = Json.Int 7; budgets; request = P.Query { goal; engine } } ->
    check tbool "goal parsed" true (Atom.equal goal (atom "anc(ann, X)"));
    check tbool "engine defaults off" false engine;
    check (Alcotest.option (Alcotest.float 0.0)) "timeout" (Some 2.0)
      budgets.P.timeout_s
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e.P.err_message);
  (match P.parse {|{"op":"add","facts":["parent(x, y)","parent(y, z)"]}|} with
  | Ok { P.request = P.Add [ a; b ]; _ } ->
    check tbool "first fact" true (Atom.equal a (atom "parent(x, y)"));
    check tbool "second fact" true (Atom.equal b (atom "parent(y, z)"))
  | _ -> Alcotest.fail "add did not parse");
  List.iter
    (fun (line, expect) ->
      match P.parse line with
      | Ok _ -> Alcotest.fail ("accepted: " ^ line)
      | Error e ->
        check tbool
          (Printf.sprintf "%s mentions %s (got %s)" line expect e.P.err_message)
          true
          (contains ~sub:expect e.P.err_message))
    [ ("{not json", "bad JSON");
      ({|{"op":"frobnicate"}|}, "unknown op");
      ({|{"goal":"p(X)"}|}, "missing \"op\"");
      ({|{"op":"query"}|}, "goal");
      ({|{"op":"add","facts":"p(a)"}|}, "array");
      ({|{"op":"add","facts":["p(X,"]}|}, "cannot parse");
      ({|[1,2]|}, "object")
    ];
  (* the id is recovered even when the request is malformed *)
  match P.parse {|{"op":"nope","id":42}|} with
  | Error { P.err_id = Json.Int 42; _ } -> ()
  | _ -> Alcotest.fail "error did not recover the request id"

let test_reply_shapes () =
  let reply =
    P.answers_reply ~id:(Json.Int 3) ~goal:(atom "anc(ann, X)")
      ~answers:[ Tuple.of_atom (atom "anc(ann, bob)") ]
      ~cached:false ~complete:false ~reason:(Some "timeout") ~txn:0
      ~wall_s:0.01
  in
  check tstr "partial status" "partial" (status reply);
  (match member "reason" reply with
  | Json.String "timeout" -> ()
  | _ -> Alcotest.fail "reason missing");
  check (Alcotest.list tstr) "answers render as facts" [ "anc(ann, bob)" ]
    (answers reply);
  (* a rendered reply is one line and parses back *)
  let line = P.render reply in
  check tbool "single line" true
    (String.index_opt (String.sub line 0 (String.length line - 1)) '\n' = None);
  (match Json.of_string (String.trim line) with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "render does not parse back");
  check tstr "overloaded status" "overloaded"
    (status (P.overloaded ~id:Json.Null ~scope:"server" ~retry_after_s:0.1))

(* ------------------------------------------------------------------ *)
(* Cache *)

let tuples_of strs = List.map (fun s -> Tuple.of_atom (atom s)) strs

let test_cache_exact_and_alpha () =
  let c = Cache.create ~capacity:8 in
  let deps = Pred.Set.singleton (Atom.pred (atom "p(a, b)")) in
  Cache.insert c (atom "p(a, X)") ~deps (tuples_of [ "p(a, b)"; "p(a, c)" ]);
  (match Cache.find c (atom "p(a, X)") with
  | Some (answers, `Exact) -> check tint "exact" 2 (List.length answers)
  | _ -> Alcotest.fail "no exact hit");
  (* variable names do not matter: p(a, Y) is the same call pattern *)
  (match Cache.find c (atom "p(a, Y)") with
  | Some (_, `Exact) -> ()
  | _ -> Alcotest.fail "alpha-equivalent goal missed");
  match Cache.find c (atom "p(b, X)") with
  | None -> ()
  | Some _ -> Alcotest.fail "different constant must miss"

let test_cache_subsumption () =
  let c = Cache.create ~capacity:8 in
  let deps = Pred.Set.singleton (Atom.pred (atom "p(a, b)")) in
  Cache.insert c (atom "p(X, Y)") ~deps
    (tuples_of [ "p(a, b)"; "p(a, a)"; "p(b, b)" ]);
  (* the all-free entry answers any pattern by filtering *)
  (match Cache.find c (atom "p(a, X)") with
  | Some (answers, `Subsumed) ->
    check tint "filtered to the bound constant" 2 (List.length answers)
  | _ -> Alcotest.fail "general entry did not subsume");
  (match Cache.find c (atom "p(X, X)") with
  | Some (answers, `Subsumed) ->
    check tint "filtered to the diagonal" 2 (List.length answers)
  | _ -> Alcotest.fail "repeated-variable goal not subsumed");
  (* the converse must NOT hold: p(X, X) does not subsume p(X, Y) *)
  let c2 = Cache.create ~capacity:8 in
  Cache.insert c2 (atom "p(X, X)") ~deps (tuples_of [ "p(a, a)" ]);
  match Cache.find c2 (atom "p(X, Y)") with
  | None -> ()
  | Some _ -> Alcotest.fail "diagonal entry wrongly subsumed the full pattern"

let test_cache_lru_and_invalidation () =
  let c = Cache.create ~capacity:2 in
  let dep name = Pred.Set.singleton (Atom.pred (atom (name ^ "(a)"))) in
  Cache.insert c (atom "p(X)") ~deps:(dep "p") (tuples_of [ "p(a)" ]);
  Cache.insert c (atom "q(X)") ~deps:(dep "q") (tuples_of [ "q(a)" ]);
  ignore (Cache.find c (atom "p(X)"));
  (* p is now more recent than q; inserting r must evict q *)
  Cache.insert c (atom "r(X)") ~deps:(dep "r") (tuples_of [ "r(a)" ]);
  check tint "capacity held" 2 (Cache.length c);
  check tbool "recently used survived" true (Cache.find c (atom "p(X)") <> None);
  check tbool "lru evicted" true (Cache.find c (atom "q(X)") = None);
  (* invalidation: only entries depending on the changed predicate go *)
  let n = Cache.invalidate c (Pred.Set.singleton (Atom.pred (atom "p(a)"))) in
  check tint "one entry invalidated" 1 n;
  check tbool "p gone" true (Cache.find c (atom "p(X)") = None);
  check tbool "r kept" true (Cache.find c (atom "r(X)") <> None);
  let s = Cache.stats c in
  check tint "eviction counted" 1 s.Cache.evictions;
  check tint "invalidation counted" 1 s.Cache.invalidations

(* ------------------------------------------------------------------ *)
(* Supervisor: queries, cache wiring, transactions *)

let test_query_cache_and_invalidation () =
  let t = sup_exn (ancestor_program ()) in
  let q = env (P.Query { goal = atom "anc(ann, X)"; engine = false }) in
  let r1 = handle t q in
  check tstr "complete" "ok" (status r1);
  check tint "four ancestors" 4 (answer_count r1);
  check tbool "first is computed" false (cached r1);
  check tbool "second is cached" true (cached (handle t q));
  (* a delta through the rules invalidates the cached answer *)
  let add = env (P.Add [ atom "parent(eve, fay)" ]) in
  let ra = handle t add in
  check tstr "ack" "ok" (status ra);
  (match member "txn" ra with
  | Json.Int 1 -> ()
  | _ -> Alcotest.fail "first txn must be 1");
  let r3 = handle t q in
  check tbool "cache invalidated by the delta" false (cached r3);
  check tint "new ancestor visible" 5 (answer_count r3);
  check tbool "fay reached" true
    (List.mem "anc(ann, fay)" (answers r3));
  (* removal propagates through DRed and invalidates again *)
  let rr = handle t (env (P.Remove [ atom "parent(bob, cal)" ])) in
  check tstr "remove acked" "ok" (status rr);
  let r4 = handle t q in
  check tbool "eve no longer reachable" false
    (List.mem "anc(ann, eve)" (answers r4))

let test_mutation_validation_and_rollback () =
  let t = sup_exn (ancestor_program ()) in
  let before = Database.total_facts (Sup.db t) in
  (* non-ground and derived-predicate mutations are refused outright *)
  check tstr "non-ground refused" "error"
    (status (handle t (env (P.Add [ atom "parent(X, bob)" ]))));
  check tstr "derived refused" "error"
    (status (handle t (env (P.Add [ atom "anc(zz, ww)" ]))));
  (* a budget blown mid-propagation rolls the whole batch back *)
  let tight = { P.no_budgets with P.max_facts = Some 1 } in
  let r =
    handle t (env ~budgets:tight (P.Add [ atom "parent(cal, zed)" ]))
  in
  check tstr "exhausted batch is an error" "error" (status r);
  (match member "message" r with
  | Json.String m -> check tbool "explains the budget" true (contains ~sub:"budget" m)
  | _ -> Alcotest.fail "no message");
  check tint "database unchanged" before (Database.total_facts (Sup.db t));
  check tint "no transaction recorded" 0 (Sup.txn t)

let test_partial_reply () =
  (* engine-mode query under a tight budget: partial answers, explicit
     reason, nothing cached *)
  let explosive =
    Program.make
      ~facts:(List.init 12 (fun i -> Atom.app "d" [ Term.int i ]))
      [ rule "p(X, Y) :- d(X), d(Y)." ]
  in
  let t = sup_exn explosive in
  let tight = { P.no_budgets with P.max_facts = Some 10 } in
  let r =
    handle t (env ~budgets:tight (P.Query { goal = atom "p(X, Y)"; engine = true }))
  in
  check tstr "partial" "partial" (status r);
  (match member "reason" r with
  | Json.String reason -> check tstr "names the cap" "max-facts" reason
  | _ -> Alcotest.fail "no reason");
  check tbool "some answers" true (answer_count r > 0);
  check tbool "partial set is a strict subset" true (answer_count r < 144)

let test_negation_program_base_mode () =
  let t = sup_exn (negation_program ()) in
  check tbool "negation forces base mode" false (Sup.positive t);
  let q = env (P.Query { goal = atom "safe(X)"; engine = false }) in
  let r1 = handle t q in
  check tstr "engine answers" "ok" (status r1);
  check tint "two safe nodes" 2 (answer_count r1);
  check tbool "cached on repeat" true (cached (handle t q));
  (* base-mode mutation: plain tuple change, cache still invalidated *)
  let ra = handle t (env (P.Add [ atom "node(4)" ])) in
  check tstr "ack" "ok" (status ra);
  let r2 = handle t q in
  check tbool "invalidated" false (cached r2);
  check tint "new node is safe" 3 (answer_count r2)

(* ------------------------------------------------------------------ *)
(* Admission control *)

let test_admission_overload () =
  let config =
    { Sup.default_config with Sup.queue_depth = 4; session_inflight = 100 }
  in
  let t = sup_exn ~config (ancestor_program ()) in
  let now = Unix.gettimeofday () in
  let submit i =
    Sup.submit t ~session:1 ~now
      (env ~id:(Json.Int i) (P.Query { goal = atom "anc(ann, X)"; engine = false }))
  in
  (* queue depth K with K+M concurrent -> exactly M shed *)
  let outcomes = List.init 7 submit in
  let admitted =
    List.length (List.filter (fun o -> o = Sup.Admitted) outcomes)
  in
  let shed =
    List.length
      (List.filter (function Sup.Overloaded _ -> true | _ -> false) outcomes)
  in
  check tint "exactly K admitted" 4 admitted;
  check tint "exactly M shed" 3 shed;
  check tint "queue holds K" 4 (Sup.pending t);
  (* shed requests did no work; admitted ones all complete *)
  let replies = ref 0 in
  let rec drain () =
    match Sup.process_one t ~now:(Unix.gettimeofday ()) with
    | None -> ()
    | Some (_, reply, `Continue) ->
      check tstr "admitted request completes" "ok" (status reply);
      incr replies;
      drain ()
    | Some (_, _, `Stop) -> Alcotest.fail "no shutdown was requested"
  in
  drain ();
  check tint "every admitted request answered" 4 !replies;
  (* the queue drained: the next burst is admitted again *)
  check tbool "recovered after drain" true (submit 99 = Sup.Admitted)

let test_admission_session_cap () =
  let config =
    { Sup.default_config with Sup.queue_depth = 100; session_inflight = 2 }
  in
  let t = sup_exn ~config (ancestor_program ()) in
  let now = Unix.gettimeofday () in
  let submit session =
    Sup.submit t ~session ~now
      (env (P.Query { goal = atom "anc(ann, X)"; engine = false }))
  in
  check tbool "1st admitted" true (submit 1 = Sup.Admitted);
  check tbool "2nd admitted" true (submit 1 = Sup.Admitted);
  check tbool "3rd capped" true (submit 1 = Sup.Session_capped);
  (* the cap is per session: another client is unaffected *)
  check tbool "other session admitted" true (submit 2 = Sup.Admitted)

let test_deadline_expires_in_queue () =
  let t = sup_exn (ancestor_program ()) in
  let now = Unix.gettimeofday () in
  let tight = { P.no_budgets with P.timeout_s = Some 0.001 } in
  (match
     Sup.submit t ~session:1 ~now
       (env ~budgets:tight (P.Query { goal = atom "anc(ann, X)"; engine = false }))
   with
  | Sup.Admitted -> ()
  | _ -> Alcotest.fail "not admitted");
  (* the request waits past its deadline: answered with an error, never
     executed *)
  match Sup.process_one t ~now:(now +. 1.0) with
  | Some (_, reply, `Continue) ->
    check tstr "expired" "error" (status reply);
    (match member "message" reply with
    | Json.String m ->
      check tbool "names the deadline" true (contains ~sub:"deadline" m)
    | _ -> Alcotest.fail "no message")
  | _ -> Alcotest.fail "queued request vanished"

(* ------------------------------------------------------------------ *)
(* Recovery *)

let with_snapshot_config path =
  { Sup.default_config with Sup.snapshot_path = Some path }

let rm_state path =
  rm path;
  rm (path ^ ".wal")

let test_recovery_roundtrip () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm_state path) @@ fun () ->
  rm_state path;
  let config = with_snapshot_config path in
  let t = sup_exn ~config (ancestor_program ()) in
  check tbool "wal is on" true (Sup.wal_active t);
  check tstr "txn 1" "ok" (status (handle t (env (P.Add [ atom "parent(eve, fay)" ]))));
  check tstr "txn 2" "ok"
    (status (handle t (env (P.Remove [ atom "parent(bob, dan)" ]))));
  let facts_before = Database.total_facts (Sup.db t) in
  (* no snapshot was ever written: recovery is pure log replay over the
     program's own facts *)
  check tbool "snapshot not yet installed" false (Sys.file_exists path);
  let t2 = sup_exn ~config (ancestor_program ()) in
  check tint "acked transactions recovered" 2 (Sup.txn t2);
  check tint "state recovered exactly" facts_before
    (Database.total_facts (Sup.db t2));
  let r = handle t2 (env (P.Query { goal = atom "anc(ann, X)"; engine = false })) in
  check tbool "fay survived the restart" true
    (List.mem "anc(ann, fay)" (answers r));
  check tbool "dan stayed removed" false (List.mem "anc(ann, dan)" (answers r))

let test_wal_rotation_and_recovery () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm_state path) @@ fun () ->
  rm_state path;
  (* a tiny rotation threshold: every committed batch pushes the log
     over it, so each mutation installs a snapshot and truncates *)
  let config = { (with_snapshot_config path) with Sup.wal_max_bytes = 1 } in
  let t = sup_exn ~config (ancestor_program ()) in
  check tstr "txn 1" "ok" (status (handle t (env (P.Add [ atom "parent(eve, fay)" ]))));
  check tbool "rotation installed a snapshot" true (Sys.file_exists path);
  let wal_after_rotation =
    In_channel.with_open_bin (path ^ ".wal") In_channel.input_all
  in
  check tbool "log truncated to its header" true
    (String.length wal_after_rotation < 32);
  check tstr "txn 2" "ok"
    (status (handle t (env (P.Remove [ atom "parent(bob, dan)" ]))));
  let facts_before = Database.total_facts (Sup.db t) in
  (* recovery = snapshot (txn 2, after the second rotation) + empty log *)
  let t2 = sup_exn ~config (ancestor_program ()) in
  check tint "acked transactions recovered" 2 (Sup.txn t2);
  check tint "state recovered exactly" facts_before
    (Database.total_facts (Sup.db t2))

let test_idempotent_retry () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm_state path) @@ fun () ->
  rm_state path;
  let config = with_snapshot_config path in
  let t = sup_exn ~config (ancestor_program ()) in
  let add = env ~key:"k1" (P.Add [ atom "parent(eve, fay)" ]) in
  let r1 = handle t add in
  check tstr "first ack" "ok" (status r1);
  (match member "key" r1 with
  | Json.String "k1" -> ()
  | _ -> Alcotest.fail "ack does not echo the key");
  check tbool "first apply is not idempotent" true
    (Json.member "idempotent" r1 = None);
  let facts_after = Database.total_facts (Sup.db t) in
  (* the retry returns the original ack verbatim and applies nothing *)
  let r2 = handle t add in
  check tstr "retry acked" "ok" (status r2);
  (match member "idempotent" r2 with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "retry not marked idempotent");
  check tint "same txn" (int_field "txn" r1) (int_field "txn" r2);
  check tint "nothing re-applied" facts_after (Database.total_facts (Sup.db t));
  check tint "txn counter unchanged" 1 (Sup.txn t);
  (* the key survives a restart: the log carries it *)
  let t2 = sup_exn ~config (ancestor_program ()) in
  let r3 = handle t2 add in
  check tstr "post-restart retry acked" "ok" (status r3);
  (match member "idempotent" r3 with
  | Json.Bool true -> ()
  | _ -> Alcotest.fail "post-restart retry not idempotent");
  check tint "post-restart txn unchanged" 1 (Sup.txn t2);
  (* a different key is a different transaction *)
  let r4 = handle t2 (env ~key:"k2" (P.Add [ atom "parent(fay, gus)" ])) in
  check tstr "new key applies" "ok" (status r4);
  check tbool "new key is not idempotent" true
    (Json.member "idempotent" r4 = None);
  check tint "txn advanced" 2 (Sup.txn t2)

let test_wal_failed_apply_truncated () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm_state path) @@ fun () ->
  rm_state path;
  let config = with_snapshot_config path in
  let t = sup_exn ~config (ancestor_program ()) in
  check tstr "one good txn" "ok"
    (status (handle t (env (P.Add [ atom "parent(eve, fay)" ]))));
  (* a budget blown mid-propagation: the batch rolls back in memory AND
     its already-appended frame is cut back out of the log *)
  let tight = { P.no_budgets with P.max_facts = Some 1 } in
  check tstr "exhausted batch is an error" "error"
    (status (handle t (env ~budgets:tight (P.Add [ atom "parent(cal, zed)" ]))));
  check tint "txn did not advance" 1 (Sup.txn t);
  let t2 = sup_exn ~config (ancestor_program ()) in
  check tint "replay sees only the committed txn" 1 (Sup.txn t2);
  check tint "state agrees" (Database.total_facts (Sup.db t))
    (Database.total_facts (Sup.db t2))

let test_recovery_lenient_fallback () =
  let path = tmpfile () in
  Fun.protect ~finally:(fun () -> rm_state path) @@ fun () ->
  rm_state path;
  let log = ref [] in
  let config =
    { (with_snapshot_config path) with Sup.log = (fun l -> log := l :: !log) }
  in
  let t = sup_exn ~config (ancestor_program ()) in
  check tstr "acked" "ok" (status (handle t (env (P.Add [ atom "parent(eve, fay)" ]))));
  (* force a rotation so the snapshot exists and the log is empty *)
  (match Sup.snapshot_now t with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("rotation failed: " ^ msg));
  (* corrupt one byte inside a relation section's tuple lines (the dict
     block also holds ':'-tagged values, so aim past "rel:"): the
     section CRC no longer matches, Strict refuses, Lenient salvages the
     rest and says so *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let find_sub s sub =
    let n = String.length sub and m = String.length s in
    let rec go i =
      if i + n > m then None
      else if String.sub s i n = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let target =
    match find_sub data "rel:" with
    | Some i -> (
      match String.index_from_opt data i '\n' with
      | Some j -> j + 2  (* inside the section's first tuple line *)
      | None -> Alcotest.fail "unexpected snapshot layout")
    | None -> Alcotest.fail "unexpected snapshot layout"
  in
  let corrupted = Bytes.of_string data in
  Bytes.set corrupted target
    (if Bytes.get corrupted target = '0' then '1' else '0');
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc corrupted);
  let t2 = sup_exn ~config (ancestor_program ()) in
  check tint "txn counter survived the salvage" 1 (Sup.txn t2);
  let joined = String.concat "\n" !log in
  check tbool "strict failure was logged" true
    (contains ~sub:"strict load failed" joined);
  check tbool "salvage was logged" true (contains ~sub:"salvaged" joined)

(* ------------------------------------------------------------------ *)
(* End-to-end: the real binary over a Unix socket *)

(* dune runs the suite from _build/default/test; when invoked from
   elsewhere, resolve the binary relative to the test executable *)
let serve_exe =
  let local = "../bin/alexander_serve.exe" in
  if Sys.file_exists local then local
  else
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/alexander_serve.exe"

let connect_with_retry path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server socket never came up"
      else begin
        ignore (Unix.select [] [] [] 0.05);
        go ()
      end
  in
  go ()

let spawn_server args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process serve_exe
      (Array.of_list (serve_exe :: args))
      Unix.stdin Unix.stdout devnull
  in
  Unix.close devnull;
  pid

let wait_exit pid =
  let _, st = Unix.waitpid [] pid in
  match st with
  | Unix.WEXITED code -> code
  | Unix.WSIGNALED s -> Alcotest.fail (Printf.sprintf "killed by signal %d" s)
  | Unix.WSTOPPED _ -> Alcotest.fail "stopped"

let session_rpc socket_path lines =
  let fd = connect_with_retry socket_path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  List.map
    (fun line ->
      output_string oc (line ^ "\n");
      flush oc;
      match In_channel.input_line ic with
      | Some reply -> Json.of_string reply
      | None -> Alcotest.fail ("no reply to: " ^ line))
    lines

let write_program path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
         parent(ann, bob).\n\
         parent(bob, cal).\n")

let test_e2e_session_and_restart () =
  let dir = Filename.temp_file "alexserve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let program = Filename.concat dir "prog.dl" in
  let socket = Filename.concat dir "sock" in
  let snapshot = Filename.concat dir "state.alexsnap" in
  write_program program;
  let args =
    [ program; "--socket"; socket; "--snapshot"; snapshot; "--quiet" ]
  in
  Fun.protect ~finally:(fun () ->
      List.iter rm [ program; socket; snapshot; snapshot ^ ".wal" ];
      (try Sys.rmdir dir with Sys_error _ -> ()))
  @@ fun () ->
  (* session 1: observe, mutate, roll the mutation back, shut down *)
  let pid = spawn_server args in
  let replies =
    session_rpc socket
      [ {|{"op":"ping","id":0}|};
        {|{"op":"query","id":1,"goal":"anc(ann, X)"}|};
        {|{"op":"add","id":2,"facts":["parent(cal, eve)"]}|};
        {|{"op":"query","id":3,"goal":"anc(ann, X)"}|};
        {|{"op":"remove","id":4,"facts":["parent(cal, eve)"]}|};
        {|{"op":"add","id":5,"facts":["parent(cal, fin)"]}|};
        {|{"op":"query","id":6,"goal":"anc(ann, X)"}|};
        {|{"op":"shutdown","id":7}|}
      ]
  in
  check tint "clean exit" 0 (wait_exit pid);
  (match replies with
  | [ pong; q1; add1; q2; rem; add2; q3; byebye ] ->
    check tstr "pong ok" "ok" (status pong);
    check tint "two ancestors" 2 (answer_count q1);
    check tstr "add acked" "ok" (status add1);
    check tint "three after add" 3 (answer_count q2);
    check tstr "remove acked" "ok" (status rem);
    check tstr "second add acked" "ok" (status add2);
    check tbool "eve rolled back, fin present" true
      (List.mem "anc(ann, fin)" (answers q3)
      && not (List.mem "anc(ann, eve)" (answers q3)));
    (match Json.member "bye" byebye with
    | Some (Json.Bool true) -> ()
    | _ -> Alcotest.fail "no bye")
  | _ -> Alcotest.fail "wrong number of replies");
  (* session 2: a fresh process on the same snapshot sees the acked
     state — three transactions, fin reachable, eve not *)
  let pid2 = spawn_server args in
  let replies2 =
    session_rpc socket
      [ {|{"op":"stats","id":0}|};
        {|{"op":"query","id":1,"goal":"anc(ann, X)"}|};
        {|{"op":"shutdown","id":2}|}
      ]
  in
  check tint "clean exit again" 0 (wait_exit pid2);
  match replies2 with
  | [ stats; q; _bye ] ->
    (match Json.member "txn" stats with
    | Some (Json.Int 3) -> ()
    | Some j -> Alcotest.fail ("wrong txn after restart: " ^ Json.to_line j)
    | None -> Alcotest.fail "stats lacks txn");
    check tbool "acked state survived the restart" true
      (List.mem "anc(ann, fin)" (answers q)
      && not (List.mem "anc(ann, eve)" (answers q)))
  | _ -> Alcotest.fail "wrong number of replies after restart"

let test_e2e_overload_pipelined () =
  let dir = Filename.temp_file "alexserve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let program = Filename.concat dir "prog.dl" in
  let socket = Filename.concat dir "sock" in
  write_program program;
  Fun.protect ~finally:(fun () ->
      List.iter rm [ program; socket ];
      (try Sys.rmdir dir with Sys_error _ -> ()))
  @@ fun () ->
  let pid =
    spawn_server
      [ program; "--socket"; socket; "--queue-depth"; "2";
        "--session-inflight"; "100"; "--quiet" ]
  in
  (* six queries in ONE write: the loop reads them all before executing
     any, so with queue depth 2 exactly four are shed *)
  let fd = connect_with_retry socket in
  let batch =
    String.concat ""
      (List.init 6 (fun i ->
           Printf.sprintf {|{"op":"query","id":%d,"goal":"anc(ann, X)"}|} i
           ^ "\n"))
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc batch;
  flush oc;
  let replies =
    List.init 6 (fun _ ->
        match In_channel.input_line ic with
        | Some line -> Json.of_string line
        | None -> Alcotest.fail "connection dropped mid-batch")
  in
  let shed =
    List.filter (fun r -> status r = "overloaded") replies
  in
  let served = List.filter (fun r -> status r = "ok") replies in
  check tint "exactly M shed" 4 (List.length shed);
  check tint "exactly K served" 2 (List.length served);
  List.iter
    (fun r ->
      match Json.member "retry_after_s" r with
      | Some (Json.Float f) -> check tbool "retry hint positive" true (f > 0.0)
      | _ -> Alcotest.fail "overloaded reply lacks retry_after_s")
    shed;
  ignore
    (session_rpc socket [ {|{"op":"shutdown","id":9}|} ]);
  (try Unix.close fd with _ -> ());
  check tint "clean exit" 0 (wait_exit pid)

let suite =
  [ ( "server",
      [ Alcotest.test_case "protocol parse" `Quick test_parse_roundtrip;
        Alcotest.test_case "protocol replies" `Quick test_reply_shapes;
        Alcotest.test_case "cache exact + alpha" `Quick
          test_cache_exact_and_alpha;
        Alcotest.test_case "cache subsumption" `Quick test_cache_subsumption;
        Alcotest.test_case "cache lru + invalidation" `Quick
          test_cache_lru_and_invalidation;
        Alcotest.test_case "query, cache, deltas" `Quick
          test_query_cache_and_invalidation;
        Alcotest.test_case "mutation validation + rollback" `Quick
          test_mutation_validation_and_rollback;
        Alcotest.test_case "partial reply under budget" `Quick
          test_partial_reply;
        Alcotest.test_case "negation program, base mode" `Quick
          test_negation_program_base_mode;
        Alcotest.test_case "admission: overload is exact" `Quick
          test_admission_overload;
        Alcotest.test_case "admission: session cap" `Quick
          test_admission_session_cap;
        Alcotest.test_case "deadline expires in queue" `Quick
          test_deadline_expires_in_queue;
        Alcotest.test_case "recovery roundtrip" `Quick test_recovery_roundtrip;
        Alcotest.test_case "wal rotation + recovery" `Quick
          test_wal_rotation_and_recovery;
        Alcotest.test_case "idempotent retry" `Quick test_idempotent_retry;
        Alcotest.test_case "wal: failed apply truncated" `Quick
          test_wal_failed_apply_truncated;
        Alcotest.test_case "recovery: lenient fallback" `Quick
          test_recovery_lenient_fallback;
        Alcotest.test_case "e2e session + restart" `Quick
          test_e2e_session_and_restart;
        Alcotest.test_case "e2e overload" `Quick test_e2e_overload_pipelined
      ] )
  ]
