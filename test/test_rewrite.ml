(* Rewrite tests: binding patterns, SIP strategies, adornment, and the
   three rewritings (generalized magic, supplementary magic, Alexander
   templates) — structure and, most importantly, answer correctness
   against direct semi-naive evaluation. *)

open Datalog_ast
open Datalog_storage
open Datalog_engine
open Datalog_rewrite

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstring = Alcotest.string

let prog = Datalog_parser.Parser.program_of_string
let atom = Datalog_parser.Parser.atom_of_string
let rule = Datalog_parser.Parser.rule_of_string

(* -------------------------------------------------------------------- *)
(* Binding patterns *)

let test_binding_roundtrip () =
  let b = Binding.of_string "bfb" in
  check tstring "round-trip" "bfb" (Binding.to_string b);
  check tint "bound count" 2 (Binding.bound_count b);
  check (Alcotest.list tint) "bound positions" [ 0; 2 ] (Binding.bound_positions b);
  check (Alcotest.list tint) "free positions" [ 1 ] (Binding.free_positions b)

let test_binding_of_atom () =
  let a = atom "p(X, c, Y)" in
  let b = Binding.of_atom ~bound:(String.equal "X") a in
  check tstring "constants and bound vars" "bbf" (Binding.to_string b)

let test_binding_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Binding.of_string: 'x'")
    (fun () -> ignore (Binding.of_string "bx"))

(* -------------------------------------------------------------------- *)
(* SIP strategies *)

let body_of r = Rule.body r

let test_sips_ltr_keeps_order () =
  let r = rule "p(X, Y) :- e(X, Z), f(Z, Y)." in
  let ordered =
    Sips.order Sips.Left_to_right ~bound:(String.equal "X") (body_of r)
  in
  check tbool "unchanged" true (List.equal Literal.equal ordered (body_of r))

let test_sips_postpones_negation () =
  let r = rule "p(X) :- not q(Y), e(X, Y)." in
  let ordered =
    Sips.order Sips.Left_to_right ~bound:(String.equal "X") (body_of r)
  in
  match ordered with
  | [ Literal.Pos _; Literal.Neg _ ] -> ()
  | _ -> Alcotest.fail "negation must be postponed until bound"

let test_sips_greedy_prefers_bound () =
  (* with X bound, greedy should pick e(X, Z) before f(W, Y) *)
  let r = rule "p(X, Y) :- f(W, Y), e(X, Z), g(Z, W)." in
  let ordered =
    Sips.order Sips.Greedy_bound ~bound:(String.equal "X") (body_of r)
  in
  match ordered with
  | Literal.Pos first :: _ ->
    check tstring "e first" "e" (Pred.name (Atom.pred first))
  | _ -> Alcotest.fail "positive first"

let test_sips_flushes_ready_comparisons () =
  let r = rule "p(X) :- e(X, Y), Y < 5, f(Y, Z)." in
  let ordered =
    Sips.order Sips.Left_to_right ~bound:(fun _ -> false) (body_of r)
  in
  match ordered with
  | [ Literal.Pos _; Literal.Cmp _; Literal.Pos _ ] -> ()
  | _ -> Alcotest.fail "comparison right after its variables bind"

(* -------------------------------------------------------------------- *)
(* Adornment *)

let test_adorn_ancestor () =
  let program = Alexander.Workloads.ancestor_chain 3 in
  let adorned = Adorn.adorn program (atom "anc(0, X)") in
  check tstring "query binding" "bf" (Binding.to_string adorned.Adorn.query_binding);
  check tstring "query pred" "anc__bf" (Pred.name adorned.Adorn.query_pred);
  (* two source rules, one reachable binding pattern *)
  check tint "two adorned rules" 2 (List.length adorned.Adorn.rules);
  (* the recursive rule's body atom anc(Z, Y) is called with Z bound *)
  let recursive =
    List.find
      (fun (r : Adorn.adorned_rule) -> List.length r.Adorn.body = 2)
      adorned.Adorn.rules
  in
  match List.rev recursive.Adorn.body with
  | Literal.Pos a :: _ ->
    check tstring "recursive call adorned bf" "anc__bf" (Pred.name (Atom.pred a))
  | _ -> Alcotest.fail "expected positive recursive call"

let test_adorn_multiple_bindings () =
  (* same-generation with a bound-first query produces sg__bf only; the
     "both free" pattern is never reached *)
  let program = Alexander.Workloads.same_generation ~layers:2 ~width:2 in
  let adorned = Adorn.adorn program (atom "sg(0, X)") in
  let bindings =
    List.sort_uniq compare
      (List.map
         (fun (r : Adorn.adorned_rule) -> Binding.to_string r.Adorn.head_binding)
         adorned.Adorn.rules)
  in
  check (Alcotest.list tstring) "only bf reached" [ "bf" ] bindings

let test_adorn_all_free_query () =
  let program = Alexander.Workloads.ancestor_chain 3 in
  let adorned = Adorn.adorn program (atom "anc(X, Y)") in
  check tstring "ff binding" "ff" (Binding.to_string adorned.Adorn.query_binding);
  check tstring "pred" "anc__ff" (Pred.name adorned.Adorn.query_pred)

let test_adorn_unbound_negation_raises () =
  (* Y is never bound by a positive literal, so the negated IDB call q(X, Y)
     cannot be fully bound under any order; adornment must refuse (the rule
     is not range-restricted, which the solver's validation also rejects) *)
  let program = prog "p(X) :- e(X), not q(X, Y). q(X, Y) :- e2(X, Y). e(1)." in
  match Adorn.adorn program (atom "p(1)") with
  | exception Adorn.Unbound_negation _ -> ()
  | _ -> Alcotest.fail "expected Unbound_negation"

let test_adorn_indices_stable () =
  let program = Alexander.Workloads.same_generation ~layers:3 ~width:3 in
  let a1 = Adorn.adorn program (atom "sg(0, X)") in
  let a2 = Adorn.adorn program (atom "sg(0, X)") in
  check tbool "deterministic" true
    (List.equal
       (fun (r1 : Adorn.adorned_rule) (r2 : Adorn.adorned_rule) ->
         r1.Adorn.index = r2.Adorn.index && Rule.equal
           (Rule.make r1.Adorn.head r1.Adorn.body)
           (Rule.make r2.Adorn.head r2.Adorn.body))
       a1.Adorn.rules a2.Adorn.rules)

(* -------------------------------------------------------------------- *)
(* Structure of the rewritten programs *)

let adorned_ancestor () =
  Adorn.adorn (Alexander.Workloads.ancestor_chain 4) (atom "anc(0, X)")

let test_magic_structure () =
  let rw = Magic.transform (adorned_ancestor ()) in
  (* base rule: 1 modified; recursive rule: 1 modified + 1 magic *)
  check tint "three rules" 3 (List.length rw.Rewritten.rules);
  check tint "one seed" 1 (List.length rw.Rewritten.seeds);
  let seed = List.hd rw.Rewritten.seeds in
  check tstring "seed pred" "m_anc__bf" (Pred.name (Atom.pred seed));
  check tbool "seed ground" true (Atom.is_ground seed)

let test_supplementary_structure () =
  let rw = Supplementary.transform (adorned_ancestor ()) in
  (* per rule of body length n: 1 sup0 + n steps + #idb magic + 1 head.
     base (n=1, 0 idb): 3; recursive (n=2, 1 idb): 5. *)
  check tint "eight rules" 8 (List.length rw.Rewritten.rules);
  let sup_preds =
    List.filter
      (fun r ->
        String.length (Pred.name (Atom.pred (Rule.head r))) >= 4
        && String.sub (Pred.name (Atom.pred (Rule.head r))) 0 4 = "sup_")
      rw.Rewritten.rules
  in
  check tbool "has supplementary predicates" true (List.length sup_preds > 0)

let test_alexander_structure () =
  let rw = Alexander_templates.transform (adorned_ancestor ()) in
  (* base rule (no idb): 1 ans rule.  recursive rule (1 idb): cont + call
     + final ans = 3. *)
  check tint "four rules" 4 (List.length rw.Rewritten.rules);
  check tstring "seed pred" "call_anc__bf"
    (Pred.name (Atom.pred (List.hd rw.Rewritten.seeds)));
  check tstring "answers in ans pred" "ans_anc__bf"
    (Pred.name (Rewritten.answer_pred rw))

let test_alexander_cuts_only_at_idb () =
  (* rule with two EDB literals around one IDB literal: only one
     continuation *)
  let program =
    prog
      "p(X, Y) :- e(X, A), q(A, B), f(B, Y). q(X, Y) :- g(X, Y).\n\
       e(1, 2). g(2, 3). f(3, 4)."
  in
  let adorned = Adorn.adorn program (atom "p(1, Z)") in
  let rw = Alexander_templates.transform adorned in
  let conts =
    List.filter
      (fun r ->
        let n = Pred.name (Atom.pred (Rule.head r)) in
        String.length n >= 5 && String.sub n 0 5 = "cont_")
      rw.Rewritten.rules
  in
  (* p's rule has exactly one IDB subgoal -> exactly one continuation *)
  check tint "one continuation for p's rule" 1 (List.length conts)

let test_supplementary_cuts_everywhere () =
  let program =
    prog
      "p(X, Y) :- e(X, A), q(A, B), f(B, Y). q(X, Y) :- g(X, Y).\n\
       e(1, 2). g(2, 3). f(3, 4)."
  in
  let adorned = Adorn.adorn program (atom "p(1, Z)") in
  let rw = Supplementary.transform adorned in
  let sups =
    List.sort_uniq String.compare
      (List.filter_map
         (fun r ->
           let n = Pred.name (Atom.pred (Rule.head r)) in
           if String.length n >= 4 && String.sub n 0 4 = "sup_" then Some n
           else None)
         rw.Rewritten.rules)
  in
  (* p's rule (3 literals) gets sup_0..sup_3; q's rule (1 literal) gets
     sup_0..sup_1: six distinct supplementary predicates *)
  check tint "six supplementary predicates" 6 (List.length sups)

(* -------------------------------------------------------------------- *)
(* Answer correctness: every rewriting = direct evaluation *)

let stratified_exn program =
  match Stratified.run program with
  | Ok outcome -> outcome
  | Error msg -> Alcotest.fail msg

let direct_answers program query =
  let outcome = stratified_exn program in
  let pred = Atom.pred query in
  Database.tuples outcome.Stratified.db pred
  |> List.filter (Tuple.matches query)
  |> List.sort Tuple.compare

let rewritten_answers transform program query =
  let adorned = Adorn.adorn program query in
  let rw = transform adorned in
  let full =
    Program.make
      ~facts:(Program.facts program @ rw.Rewritten.seeds)
      rw.Rewritten.rules
  in
  let outcome = stratified_exn full in
  let pattern = rw.Rewritten.answer_atom in
  let pred = Atom.pred pattern in
  Database.tuples outcome.Stratified.db pred
  |> List.filter (Tuple.matches pattern)
  |> List.sort Tuple.compare

let workload_cases =
  [ ("anc chain bound-first", Alexander.Workloads.ancestor_chain 12, "anc(3, X)");
    ("anc chain bound-second", Alexander.Workloads.ancestor_chain 12, "anc(X, 9)");
    ("anc chain both bound", Alexander.Workloads.ancestor_chain 12, "anc(2, 7)");
    ("anc tree", Alexander.Workloads.ancestor_tree ~depth:4 ~fanout:2, "anc(1, X)");
    ( "anc right-linear",
      Program.make
        ~facts:(Alexander.Workloads.chain ~pred:"edge" 10)
        (Alexander.Workloads.ancestor_rules_right ()),
      "anc(4, X)" );
    ( "same generation",
      Alexander.Workloads.same_generation ~layers:4 ~width:3,
      "sg(0, X)" );
    ( "reverse same generation",
      Alexander.Workloads.reverse_same_generation ~layers:3 ~width:3,
      "rsg(0, X)" );
    ( "nonlinear tc",
      Program.make
        ~facts:(Alexander.Workloads.chain ~pred:"edge" 8)
        (Alexander.Workloads.tc_nonlinear_rules ()),
      "tc(2, X)" );
    ( "tc on a cycle",
      Program.make
        ~facts:(Alexander.Workloads.cycle ~pred:"edge" 7)
        (Alexander.Workloads.tc_nonlinear_rules ()),
      "tc(3, X)" )
  ]

let correctness_tests transform tname =
  List.map
    (fun (name, program, q) ->
      Alcotest.test_case (tname ^ ": " ^ name) `Quick (fun () ->
          let query = atom q in
          check tbool "answers agree" true
            (direct_answers program query
            = rewritten_answers transform program query)))
    workload_cases

(* magic answers are sound even with an empty result *)
let test_empty_answers () =
  let program = Alexander.Workloads.ancestor_chain 5 in
  List.iter
    (fun transform ->
      let answers = rewritten_answers transform program (atom "anc(5, 0)") in
      check tint "no answers" 0 (List.length answers))
    [ Magic.transform; Supplementary.transform; Supplementary_idb.transform;
      Alexander_templates.transform ]

(* rewriting with negation in the source program (stratified case) *)
let test_rewriting_with_stratified_negation () =
  let program =
    prog
      "link(X, Y) :- edge(X, Y).\n\
       link(X, Y) :- edge(X, Z), link(Z, Y).\n\
       broken(X, Y) :- pair(X, Y), not link(X, Y).\n\
       edge(1, 2). edge(2, 3). edge(4, 5).\n\
       pair(1, 3). pair(1, 5). pair(4, 2)."
  in
  let query = atom "broken(1, Y)" in
  let direct = direct_answers program query in
  check tint "one broken pair from 1" 1 (List.length direct);
  List.iter
    (fun transform ->
      let adorned = Adorn.adorn program query in
      let rw = transform adorned in
      let full =
        Program.make
          ~facts:(Program.facts program @ rw.Rewritten.seeds)
          rw.Rewritten.rules
      in
      (* the rewritten program may lose predicate-level stratification;
         evaluate with the conditional fixpoint *)
      let outcome = Conditional.run full in
      let pattern = rw.Rewritten.answer_atom in
      let pred = Atom.pred pattern in
      let answers =
        Database.tuples outcome.Conditional.true_db pred
        |> List.filter (Tuple.matches pattern)
        |> List.sort Tuple.compare
      in
      check tbool "negation handled" true (answers = direct);
      check tint "no undefined atoms" 0 (List.length outcome.Conditional.undefined))
    [ Magic.transform; Supplementary.transform; Supplementary_idb.transform;
      Alexander_templates.transform ]

(* property: all three rewritings agree with direct evaluation on random
   positive programs with bound queries *)
let prop_rewritings_correct =
  QCheck.Test.make
    ~name:"magic / supplementary / alexander answers = direct answers"
    ~count:50 Gen.arb_positive_program_query (fun (program, query) ->
      let direct = direct_answers program query in
      List.for_all
        (fun transform -> rewritten_answers transform program query = direct)
        [ Magic.transform; Supplementary.transform; Supplementary_idb.transform;
      Alexander_templates.transform ])

let suite =
  [ ( "rewrite:binding",
      [ Alcotest.test_case "round-trip" `Quick test_binding_roundtrip;
        Alcotest.test_case "of_atom" `Quick test_binding_of_atom;
        Alcotest.test_case "invalid" `Quick test_binding_invalid
      ] );
    ( "rewrite:sips",
      [ Alcotest.test_case "ltr keeps order" `Quick test_sips_ltr_keeps_order;
        Alcotest.test_case "postpones negation" `Quick test_sips_postpones_negation;
        Alcotest.test_case "greedy prefers bound" `Quick
          test_sips_greedy_prefers_bound;
        Alcotest.test_case "flushes comparisons" `Quick
          test_sips_flushes_ready_comparisons
      ] );
    ( "rewrite:adorn",
      [ Alcotest.test_case "ancestor" `Quick test_adorn_ancestor;
        Alcotest.test_case "reachable bindings" `Quick test_adorn_multiple_bindings;
        Alcotest.test_case "all-free query" `Quick test_adorn_all_free_query;
        Alcotest.test_case "unbound negation" `Quick
          test_adorn_unbound_negation_raises;
        Alcotest.test_case "deterministic indices" `Quick test_adorn_indices_stable
      ] );
    ( "rewrite:structure",
      [ Alcotest.test_case "magic" `Quick test_magic_structure;
        Alcotest.test_case "supplementary" `Quick test_supplementary_structure;
        Alcotest.test_case "alexander" `Quick test_alexander_structure;
        Alcotest.test_case "alexander cuts at idb" `Quick
          test_alexander_cuts_only_at_idb;
        Alcotest.test_case "supplementary cuts everywhere" `Quick
          test_supplementary_cuts_everywhere
      ] );
    ( "rewrite:correctness",
      correctness_tests Magic.transform "magic"
      @ correctness_tests Supplementary.transform "supplementary"
      @ correctness_tests Supplementary_idb.transform "supplementary-idb"
      @ correctness_tests Alexander_templates.transform "alexander"
      @ [ Alcotest.test_case "empty answers" `Quick test_empty_answers;
          Alcotest.test_case "stratified negation" `Quick
            test_rewriting_with_stratified_negation
        ] );
    ( "rewrite:properties",
      List.map QCheck_alcotest.to_alcotest [ prop_rewritings_correct ] )
  ]
