(* End-to-end tests of the command-line binary: every subcommand is run
   against the shipped sample programs and its output inspected. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let cli = "../bin/alexander_cli.exe"
let samples = "../examples/programs"

let run_cli args =
  let cmd = Filename.quote_command cli args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  let code = match status with Unix.WEXITED n -> n | _ -> -1 in
  (code, output)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let sample name = Filename.concat samples name

let test_run_file_queries () =
  let code, out = run_cli [ "run"; sample "ancestor.dl" ] in
  check tint "exit 0" 0 code;
  check tbool "answers printed" true (contains ~sub:"anc(ann, fay)" out);
  check tbool "second query too" true (contains ~sub:"anc(cal, fay)" out)

let test_run_explicit_query_and_stats () =
  let code, out =
    run_cli
      [ "run"; sample "ancestor.dl"; "-q"; "anc(bob, X)"; "-s"; "magic";
        "--stats" ]
  in
  check tint "exit 0" 0 code;
  check tbool "strategy echoed" true (contains ~sub:"strategy:  magic" out);
  check tbool "counters shown" true (contains ~sub:"facts=" out)

let test_run_every_strategy () =
  List.iter
    (fun s ->
      let code, out =
        run_cli [ "run"; sample "ancestor.dl"; "-q"; "anc(ann, X)"; "-s"; s ]
      in
      check tint (s ^ " exits 0") 0 code;
      check tbool (s ^ " finds fay") true (contains ~sub:"anc(ann, fay)" out))
    [ "naive"; "seminaive"; "magic"; "supplementary"; "supplementary-idb";
      "alexander"; "tabled" ]

let test_analyze () =
  let code, out = run_cli [ "analyze"; sample "flights.dl" ] in
  check tint "exit 0" 0 code;
  check tbool "stratified report" true (contains ~sub:"stratified: yes" out);
  let code2, out2 = run_cli [ "analyze"; sample "win_move.dl" ] in
  check tint "exit 0 for win-move" 0 code2;
  check tbool "not stratified" true (contains ~sub:"stratified: no" out2);
  check tbool "loose check reported" true
    (contains ~sub:"loosely stratified: no" out2)

let test_analyze_dot () =
  let code, out = run_cli [ "analyze"; sample "flights.dl"; "--dot" ] in
  check tint "exit 0" 0 code;
  check tbool "graphviz" true (contains ~sub:"digraph dependencies" out);
  check tbool "negative edge styled" true (contains ~sub:"style=dashed" out)

let test_rewrite_outputs_rules () =
  let code, out =
    run_cli
      [ "rewrite"; sample "same_generation.dl"; "-q"; "sg(a, X)"; "-s";
        "alexander" ]
  in
  check tint "exit 0" 0 code;
  check tbool "call predicate" true (contains ~sub:"call_sg__bf" out);
  check tbool "continuation" true (contains ~sub:"cont_" out);
  check tbool "seed" true (contains ~sub:"call_sg__bf(a)." out)

let test_equiv_reports_equal () =
  let code, out =
    run_cli [ "equiv"; sample "ancestor.dl"; "-q"; "anc(ann, X)" ]
  in
  check tint "exit 0 = equivalent" 0 code;
  check tbool "summary line" true (contains ~sub:"equivalent: true" out)

let test_explain_prints_tree () =
  let code, out =
    run_cli [ "explain"; sample "ancestor.dl"; "-q"; "anc(ann, eve)" ]
  in
  check tint "exit 0" 0 code;
  check tbool "rule cited" true (contains ~sub:"[by anc(X, Y)" out);
  check tbool "leaf cited" true (contains ~sub:"[fact]" out);
  (* underivable goal: non-zero exit *)
  let code2, out2 =
    run_cli [ "explain"; sample "ancestor.dl"; "-q"; "anc(fay, ann)" ]
  in
  check tint "exit 1" 1 code2;
  check tbool "says not derivable" true (contains ~sub:"not derivable" out2)

let test_wellfounded_flag () =
  let code, out =
    run_cli
      [ "run"; sample "win_move.dl"; "-q"; "win(X)"; "-s"; "seminaive";
        "--negation"; "wellfounded" ]
  in
  check tint "exit 0" 0 code;
  check tbool "true answers" true (contains ~sub:"win(a)" out);
  check tbool "draws reported" true (contains ~sub:"undefined: win(g)" out)

let test_bad_query_reports_error () =
  let code, _ = run_cli [ "run"; sample "ancestor.dl"; "-q"; "anc(" ] in
  check tbool "non-zero exit" true (code <> 0)

let test_fact_cap_exit_code () =
  let code, out =
    run_cli [ "run"; sample "explosive.dl"; "--max-facts"; "100" ]
  in
  check tint "exit 4 on the fact cap" 4 code;
  check tbool "incomplete banner" true
    (contains ~sub:"incomplete (max-facts)" out);
  check tbool "partial answer count" true
    (contains ~sub:"partial answer(s)" out)

let test_timeout_exit_code () =
  let code, out =
    run_cli [ "run"; sample "explosive.dl"; "--timeout"; "0.2" ]
  in
  check tint "exit 3 on timeout" 3 code;
  check tbool "incomplete banner" true
    (contains ~sub:"incomplete (timeout)" out)

let test_limits_unbinding_by_default () =
  (* generous limits on a small program change nothing *)
  let code, out =
    run_cli
      [ "run"; sample "ancestor.dl"; "-q"; "anc(ann, X)"; "--timeout"; "60";
        "--max-facts"; "1000000" ]
  in
  check tint "exit 0" 0 code;
  check tbool "complete answers" true (contains ~sub:"anc(ann, fay)" out);
  check tbool "no incomplete banner" false (contains ~sub:"incomplete" out)

let test_stats_json_file_and_trace () =
  let out = Filename.temp_file "alexander_stats" ".json" in
  let code, output =
    run_cli
      [ "run"; sample "ancestor.dl"; "-q"; "anc(ann, X)"; "--stats-json"; out;
        "--trace" ]
  in
  check tint "exit 0" 0 code;
  check tbool "trace round lines on stderr" true
    (contains ~sub:"% trace: round" output);
  let json = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  check tbool "schema version" true
    (contains ~sub:"\"schema_version\": 6" json);
  check tbool "profile enabled" true (contains ~sub:"\"enabled\": true" json);
  check tbool "per-rule rows" true (contains ~sub:"\"rule\":" json);
  check tbool "plan block" true (contains ~sub:"\"compiled\": true" json);
  check tbool "query echoed" true (contains ~sub:"anc(ann, X)" json)

let test_stats_json_stdout () =
  let code, out =
    run_cli
      [ "run"; sample "ancestor.dl"; "-q"; "anc(bob, X)"; "-s"; "seminaive";
        "--stats-json"; "-" ]
  in
  check tint "exit 0" 0 code;
  check tbool "runs array printed" true (contains ~sub:"\"runs\":" out);
  check tbool "strategy recorded" true
    (contains ~sub:"\"strategy\": \"seminaive\"" out);
  check tbool "totals present" true (contains ~sub:"\"facts_derived\":" out)

let test_explain_flag () =
  let code, out =
    run_cli
      [ "run"; sample "ancestor.dl"; "-q"; "anc(ann, X)"; "--explain" ]
  in
  check tint "exit 0" 0 code;
  check tbool "plan banner" true (contains ~sub:"% plan " out);
  check tbool "emit step shown" true (contains ~sub:"emit " out);
  check tbool "answers still printed" true (contains ~sub:"anc(ann, fay)" out)

let test_interpret_flag () =
  let args query = [ "run"; sample "ancestor.dl"; "-q"; query ] in
  let code_c, out_c = run_cli (args "anc(ann, X)") in
  let code_i, out_i = run_cli (args "anc(ann, X)" @ [ "--interpret" ]) in
  check tint "compiled exit" 0 code_c;
  check tint "interpreted exit" 0 code_i;
  check Alcotest.string "identical output" out_c out_i

let test_stats_prints_profile () =
  let code, out =
    run_cli [ "run"; sample "ancestor.dl"; "-q"; "anc(ann, X)"; "--stats" ]
  in
  check tint "exit 0" 0 code;
  check tbool "per-rule profile section" true
    (contains ~sub:"per-rule profile" out)

let suite =
  [ ( "cli",
      [ Alcotest.test_case "run file queries" `Quick test_run_file_queries;
        Alcotest.test_case "run with stats" `Quick test_run_explicit_query_and_stats;
        Alcotest.test_case "every strategy" `Quick test_run_every_strategy;
        Alcotest.test_case "analyze" `Quick test_analyze;
        Alcotest.test_case "analyze --dot" `Quick test_analyze_dot;
        Alcotest.test_case "rewrite" `Quick test_rewrite_outputs_rules;
        Alcotest.test_case "equiv" `Quick test_equiv_reports_equal;
        Alcotest.test_case "explain" `Quick test_explain_prints_tree;
        Alcotest.test_case "wellfounded flag" `Quick test_wellfounded_flag;
        Alcotest.test_case "bad query" `Quick test_bad_query_reports_error;
        Alcotest.test_case "fact-cap exit code" `Quick test_fact_cap_exit_code;
        Alcotest.test_case "timeout exit code" `Quick test_timeout_exit_code;
        Alcotest.test_case "non-binding limits" `Quick
          test_limits_unbinding_by_default;
        Alcotest.test_case "stats-json file + trace" `Quick
          test_stats_json_file_and_trace;
        Alcotest.test_case "stats-json stdout" `Quick test_stats_json_stdout;
        Alcotest.test_case "explain flag" `Quick test_explain_flag;
        Alcotest.test_case "interpret flag" `Quick test_interpret_flag;
        Alcotest.test_case "stats prints profile" `Quick
          test_stats_prints_profile
      ] )
  ]
