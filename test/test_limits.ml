(* Resource governor: every budget stops every strategy, partial answers
   are sound, and an inactive (default) governor changes nothing. *)

open Datalog_ast
module O = Alexander.Options
module S = Alexander.Solve
module L = Datalog_engine.Limits
module C = Datalog_engine.Counters
module W = Alexander.Workloads

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let atom = Datalog_parser.Parser.atom_of_string
let rule = Datalog_parser.Parser.rule_of_string

let with_limits ?(strategy = O.Seminaive) limits =
  { O.default with O.strategy; limits }

(* A cartesian blowup: |p| = n^2 and |q| = n^4, far past any small cap. *)
let explosive n =
  let facts = List.init n (fun i -> Atom.app "d" [ Term.int i ]) in
  Program.make ~facts
    [ rule "p(X, Y) :- d(X), d(Y).";
      rule "q(X, Y, Z, W) :- p(X, Y), p(Z, W)."
    ]

(* a function: interning predicate names at module initialisation would
   perturb the Pred ordering other suites observe *)
let blowup_query () = atom "q(X, Y, Z, W)"

let run_exn ~options program query =
  match S.run ~options program query with
  | Ok report -> report
  | Error e -> Alcotest.fail (Alexander.Errors.message e)

(* -------------------------------------------------------------------- *)
(* Each budget, on its own, stops the evaluation with the right reason *)

let test_fact_cap_every_strategy () =
  let program = explosive 20 in
  let cap = 2_000 in
  List.iter
    (fun strategy ->
      let options = with_limits ~strategy (L.make ~max_facts:cap ()) in
      let report = run_exn ~options program (blowup_query ()) in
      let name = O.strategy_name strategy in
      check tbool (name ^ " reports incomplete") true (S.incomplete report);
      check tbool (name ^ " names the fact cap") true
        (report.S.status = L.Exhausted L.Fact_limit);
      (* the guard fires on the first derivation past the cap *)
      check tbool (name ^ " stays near the cap") true
        (report.S.counters.C.facts_derived <= cap + 64))
    O.all_strategies

let test_timeout_stops () =
  let program = explosive 60 in
  let t0 = Unix.gettimeofday () in
  let options = with_limits (L.make ~timeout_s:0.2 ()) in
  let report = run_exn ~options program (blowup_query ()) in
  let elapsed = Unix.gettimeofday () -. t0 in
  check tbool "timed out" true (report.S.status = L.Exhausted L.Timeout);
  check tbool "promptly" true (elapsed < 5.0)

(* Deadline granularity inside a single round: the whole q blowup is ONE
   semi-naive round (~13M candidate firings for n = 60), so a deadline
   that only fired at round boundaries would overshoot by the entire
   round.  The per-derivation poll (Limits.check_derived, every 64
   firings) must stop the round from inside, under both the compiled and
   the interpreted path. *)
let test_deadline_inside_one_round () =
  List.iter
    (fun compile ->
      let program = explosive 60 in
      let t0 = Unix.gettimeofday () in
      let options =
        { (with_limits (L.make ~timeout_s:0.05 ())) with O.compile }
      in
      let report = run_exn ~options program (blowup_query ()) in
      let elapsed = Unix.gettimeofday () -. t0 in
      check tbool "timed out mid-round" true
        (report.S.status = L.Exhausted L.Timeout);
      (* one round alone is seconds of work; the poll must cut the
         overshoot to a small multiple of the budget (generous bound so
         a loaded CI machine cannot flake it) *)
      check tbool "stopped inside the round" true (elapsed < 2.0);
      check tbool "stopped before the round completed" true
        (report.S.counters.C.iterations <= 2))
    [ true; false ]

let test_iteration_cap () =
  let program = W.ancestor_chain 30 in
  let options = with_limits (L.make ~max_iterations:3 ()) in
  let report = run_exn ~options program (atom "anc(0, X)") in
  check tbool "iteration cap hit" true
    (report.S.status = L.Exhausted L.Iteration_limit);
  (* three semi-naive rounds reach paths of length <= 4 *)
  check tbool "some partial answers" true (report.S.answers <> [])

let test_tuple_cap () =
  let program = W.ancestor_chain 30 in
  let options = with_limits (L.make ~max_tuples:50 ()) in
  let report = run_exn ~options program (atom "anc(0, X)") in
  check tbool "tuple cap hit" true
    (report.S.status = L.Exhausted L.Tuple_limit)

let test_cancellation_hook () =
  let program = W.ancestor_chain 30 in
  let options = with_limits (L.make ~cancelled:(fun () -> true) ()) in
  let report = run_exn ~options program (atom "anc(0, X)") in
  check tbool "cancelled" true (report.S.status = L.Exhausted L.Cancelled)

let test_cancellation_three_valued () =
  (* the conditional and alternating fixpoints honour the hook too *)
  let program = W.win_move_dag 6 in
  List.iter
    (fun negation ->
      let options =
        { O.default with
          O.strategy = O.Seminaive;
          negation;
          limits = L.make ~cancelled:(fun () -> true) ()
        }
      in
      let report = run_exn ~options program (atom "win(X)") in
      check tbool
        (O.negation_name negation ^ " cancelled")
        true
        (report.S.status = L.Exhausted L.Cancelled))
    [ O.Conditional; O.Well_founded ]

let test_incremental_exhaustion_is_error () =
  (* a half-propagated database is useless, so maintenance reports Error *)
  let program = W.ancestor_chain 10 in
  let db =
    match Datalog_engine.Stratified.run program with
    | Ok outcome -> outcome.Datalog_engine.Stratified.db
    | Error msg -> Alcotest.fail msg
  in
  let cnt = Datalog_engine.Counters.create () in
  match
    Datalog_engine.Incremental.add_facts cnt ~limits:(L.make ~max_facts:1 ())
      program db
      [ atom "edge(10, 11)" ]
  with
  | Error msg ->
    let has sub s =
      let n = String.length sub and m = String.length s in
      let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check tbool "explains the budget" true (has "budget" msg)
  | Ok _ -> Alcotest.fail "exhausted maintenance must not report success"

(* -------------------------------------------------------------------- *)
(* Properties *)

(* (a) a guarded blowup terminates for any strategy, near the cap *)
let prop_fact_cap_terminates =
  QCheck.Test.make ~name:"guarded blowup stays within the fact cap" ~count:15
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 10 18) (int_bound (List.length O.all_strategies - 1))))
    (fun (n, si) ->
      let strategy = List.nth O.all_strategies si in
      let cap = 500 in
      let options = with_limits ~strategy (L.make ~max_facts:cap ()) in
      match S.run ~options (explosive n) (blowup_query ()) with
      | Error _ -> false
      | Ok report -> report.S.counters.C.facts_derived <= cap + 64)

(* (b) partial answers are a subset of the unlimited answers *)
let prop_partial_subset =
  QCheck.Test.make
    ~name:"partial answers are a subset of the unlimited answers" ~count:25
    Gen.arb_positive_program_query (fun (program, query) ->
      let full =
        (run_exn ~options:{ O.default with O.strategy = O.Seminaive } program
           query)
          .S.answers
      in
      List.for_all
        (fun strategy ->
          let options = with_limits ~strategy (L.make ~max_facts:15 ()) in
          match S.run ~options program query with
          | Error _ -> false
          | Ok report ->
            List.for_all (fun t -> List.mem t full) report.S.answers)
        O.all_strategies)

(* (c) a governor whose budgets never bind changes nothing *)
let prop_slack_governor_identical =
  QCheck.Test.make
    ~name:"non-binding limits reproduce the ungoverned answers" ~count:20
    Gen.arb_positive_program_query (fun (program, query) ->
      let slack =
        L.make ~timeout_s:300. ~max_facts:10_000_000
          ~max_iterations:1_000_000 ~max_tuples:10_000_000 ()
      in
      List.for_all
        (fun strategy ->
          let plain =
            run_exn ~options:{ O.default with O.strategy } program query
          in
          let governed =
            run_exn ~options:(with_limits ~strategy slack) program query
          in
          plain.S.answers = governed.S.answers
          && (not (S.incomplete plain))
          && not (S.incomplete governed))
        O.all_strategies)

let suite =
  [ ( "limits",
      [ Alcotest.test_case "fact cap, every strategy" `Quick
          test_fact_cap_every_strategy;
        Alcotest.test_case "timeout" `Quick test_timeout_stops;
        Alcotest.test_case "deadline inside one round" `Quick
          test_deadline_inside_one_round;
        Alcotest.test_case "iteration cap" `Quick test_iteration_cap;
        Alcotest.test_case "tuple cap" `Quick test_tuple_cap;
        Alcotest.test_case "cancellation" `Quick test_cancellation_hook;
        Alcotest.test_case "cancellation (three-valued)" `Quick
          test_cancellation_three_valued;
        Alcotest.test_case "incremental exhaustion is an error" `Quick
          test_incremental_exhaustion_is_error;
        QCheck_alcotest.to_alcotest prop_fact_cap_terminates;
        QCheck_alcotest.to_alcotest prop_partial_subset;
        QCheck_alcotest.to_alcotest prop_slack_governor_identical
      ] )
  ]
