(* Snapshot format: round-trips (including hostile symbols and
   dictionary-encoded big ints), layered corruption detection (magic /
   version / truncation / dictionary / per-section CRC / manifest),
   lenient per-section degradation, atomic installation, and backward
   compatibility with the tagged-value format 1. *)

open Datalog_ast
open Datalog_storage
module Sn = Snapshot

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

let tmpfile () = Filename.temp_file "alexsnap" ".snap"
let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let file_lines path = String.split_on_char '\n' (read_file path)
let write_lines path ls = write_file path (String.concat "\n" ls)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* replace the first occurrence of [needle] in the file — a targeted,
   size-preserving "bit flip" *)
let corrupt path ~needle ~replacement =
  let data = read_file path in
  match find_sub data needle with
  | None -> Alcotest.fail ("corruption target not found: " ^ needle)
  | Some i ->
    let j = i + String.length needle in
    write_file path
      (String.sub data 0 i ^ replacement
      ^ String.sub data j (String.length data - j))

(* Format 2 stores tuples as raw code integers whose exact digits depend
   on interning order, so body corruption cannot target a literal needle:
   instead, flip the first digit of the [offset]-th line after the first
   line starting with [after]. *)
let corrupt_body path ~after ~offset =
  let ls = file_lines path in
  let rec find i = function
    | [] -> Alcotest.fail ("corruption target not found: " ^ after)
    | l :: _ when starts_with after l -> i + offset
    | _ :: rest -> find (i + 1) rest
  in
  let target = find 0 ls in
  write_lines path
    (List.mapi
       (fun i l ->
         if i <> target then l
         else
           let c = l.[0] in
           let c' = if c = '9' then '8' else Char.chr (Char.code c + 1) in
           String.make 1 c' ^ String.sub l 1 (String.length l - 1))
       ls)

(* tuples in test expectations are written as values and encoded *)
let enc vs = Array.of_list (List.map Code.of_value vs)

let tuple_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Code.equal v b.(i)) then ok := false) a;
      !ok)

let tuples_equal ts us =
  List.length ts = List.length us && List.for_all2 tuple_equal ts us

let write_exn ?meta ~sections path =
  match Sn.write ?meta ~sections path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let read_exn ?mode path =
  match Sn.read ?mode path with
  | Ok c -> c
  | Error c -> Alcotest.fail (Sn.describe_corruption c)

let crc s = Crc32.to_hex (Crc32.string s)

(* -------------------------------------------------------------------- *)
(* Round trips *)

let weird_sym = "a b\tc\\d\ne\rf \\s"

let test_roundtrip () =
  let path = tmpfile () in
  let meta = [ ("kind", "test"); ("key with space", "v\talue\\n") ] in
  let sections =
    [ ( "alpha",
        2,
        [ enc [ Value.int 1; Value.sym "one" ];
          enc [ Value.int (-3); Value.sym weird_sym ];
          (* max_int does not fit the arithmetic encoding: this row
             exercises the side dictionary through the snapshot *)
          enc [ Value.int max_int; Value.sym "" ]
        ] );
      ("beta section", 1, [ enc [ Value.sym "keep me" ] ]);
      ("empty", 3, []);
      (* arity-0 sections are real: the magic-family rewritings seed
         nullary call predicates *)
      ("nullary", 0, [ [||] ])
    ]
  in
  write_exn ~meta ~sections path;
  let c = read_exn path in
  check tbool "no warnings" true (c.Sn.warnings = []);
  check tbool "meta preserved" true (c.Sn.meta = meta);
  check tint "all sections back" (List.length sections)
    (List.length c.Sn.sections);
  List.iter2
    (fun (name, arity, tuples) s ->
      check tstr "section name" name s.Sn.s_name;
      check tint "section arity" arity s.Sn.s_arity;
      check tbool "section tuples" true (tuples_equal tuples s.Sn.s_tuples))
    sections c.Sn.sections;
  Sys.remove path

let test_db_roundtrip () =
  let db = Database.create () in
  let e = Pred.make "e" 2 in
  ignore (Database.add db e (enc [ Value.int 1; Value.sym "x y" ]));
  ignore (Database.add db e (enc [ Value.int 2; Value.sym "z" ]));
  (* "42" the symbol survives: the snapshot format is typed, unlike Io *)
  ignore (Database.add db (Pred.make "label" 1) (enc [ Value.sym "42" ]));
  let path = tmpfile () in
  (match Sn.save_database db path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Sn.load_database path with
  | Error c -> Alcotest.fail (Sn.describe_corruption c)
  | Ok (db2, warnings) ->
    check tbool "no warnings" true (warnings = []);
    let preds = Database.preds db in
    check tbool "facts preserved" true
      (Gen.db_facts_of preds db = Gen.db_facts_of preds db2);
    check tbool "symbolic 42 stays a symbol" true
      (List.exists
         (fun t -> Code.equal t.(0) (Code.of_value (Value.sym "42")))
         (Database.tuples db2 (Pred.make "label" 1)));
    Sys.remove path

let test_duplicate_section_rejected () =
  let path = tmpfile () in
  match
    Sn.write
      ~sections:[ ("dup", 1, [ [| Code.of_int 1 |] ]); ("dup", 1, []) ]
      path
  with
  | Ok () -> Alcotest.fail "duplicate sections must be rejected"
  | Error msg ->
    check tbool "names the duplicate" true (find_sub msg "duplicate" <> None)

let test_overwrite_leaves_no_tmp () =
  let path = tmpfile () in
  let sections = [ ("a", 1, [ [| Code.of_int 1 |] ]) ] in
  write_exn ~sections path;
  write_exn ~sections path;
  check tbool "no stale temp file" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

(* -------------------------------------------------------------------- *)
(* Corruption, layer by layer *)

let write_two path =
  write_exn
    ~sections:
      [ ( "alpha",
          2,
          [ enc [ Value.int 1; Value.sym "one" ];
            enc [ Value.int 2; Value.sym "two" ]
          ] );
        ("beta", 1, [ enc [ Value.sym "survivor" ] ])
      ]
    path

let test_bad_magic () =
  let path = tmpfile () in
  write_two path;
  corrupt path ~needle:"ALEXSNAP 2" ~replacement:"BOGUSFMT 2";
  (match Sn.read path with
  | Error (Sn.Not_a_snapshot _) -> ()
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "bad magic must be rejected");
  Sys.remove path

let test_unsupported_version () =
  let path = tmpfile () in
  write_two path;
  corrupt path ~needle:"ALEXSNAP 2" ~replacement:"ALEXSNAP 9";
  (match Sn.read path with
  | Error (Sn.Unsupported_version 9) -> ()
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "future versions must be rejected");
  Sys.remove path

let test_truncation_detected () =
  let path = tmpfile () in
  (* a torn write: only a prefix of the file reached the disk — here it
     ends inside the dictionary block *)
  write_two path;
  let ls = file_lines path in
  write_lines path
    (List.filteri (fun i _ -> i < 4) ls);
  (match Sn.read path with
  | Error (Sn.Truncated _) -> ()
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "a torn prefix must be rejected");
  (* a file missing only its end marker *)
  write_two path;
  let ls = file_lines path in
  write_lines path
    (List.filter (fun l -> not (starts_with "end ALEXSNAP" l)) ls);
  (match Sn.read path with
  | Error (Sn.Truncated what) ->
    check tbool "names the end marker" true (find_sub what "end" <> None)
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "a missing end marker must be rejected");
  (* truncation is structural: Lenient refuses it too *)
  (match Sn.read ~mode:Sn.Lenient path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lenient mode must still reject truncation");
  Sys.remove path

let test_bitflip_strict () =
  let path = tmpfile () in
  write_two path;
  corrupt_body path ~after:"section alpha " ~offset:1;
  (match Sn.read path with
  | Error (Sn.Checksum_mismatch { section; _ }) ->
    check tstr "names the damaged section" "alpha" section
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "a flipped byte must fail the section checksum");
  Sys.remove path

let test_bitflip_lenient_skips_section () =
  let path = tmpfile () in
  write_two path;
  corrupt_body path ~after:"section alpha " ~offset:1;
  let c = read_exn ~mode:Sn.Lenient path in
  check tint "one warning" 1 (List.length c.Sn.warnings);
  let w = List.hd c.Sn.warnings in
  check tstr "warning names alpha" "alpha" w.Sn.w_section;
  (match w.Sn.w_corruption with
  | Sn.Checksum_mismatch _ -> ()
  | _ -> Alcotest.fail "warning must carry the checksum mismatch");
  check tint "undamaged section survives" 1 (List.length c.Sn.sections);
  let s = List.hd c.Sn.sections in
  check tstr "the survivor is beta" "beta" s.Sn.s_name;
  check tbool "its data is intact" true
    (tuples_equal [ enc [ Value.sym "survivor" ] ] s.Sn.s_tuples);
  Sys.remove path

let test_dict_damage_is_fatal_in_both_modes () =
  (* the dictionary is structural — no section decodes without it — so a
     flipped byte there refuses the whole file even in Lenient mode *)
  let path = tmpfile () in
  write_two path;
  corrupt path ~needle:"s:one" ~replacement:"s:oqe";
  let expect = function
    | Error (Sn.Checksum_mismatch { section = "dict"; _ }) -> ()
    | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
    | Ok _ -> Alcotest.fail "dictionary damage must be rejected"
  in
  expect (Sn.read path);
  expect (Sn.read ~mode:Sn.Lenient path);
  Sys.remove path

let test_missing_dict_code () =
  (* a hand-built format-2 file whose "bad" section references an even
     code the (checksum-valid) dictionary does not define: strict refuses,
     lenient skips just that section *)
  let path = tmpfile () in
  let bad_body = "8\n" and good_body = "3\n" in
  let manifest_body =
    Printf.sprintf "bad\t1\t1\t%s\ngood\t1\t1\t%s\n" (crc bad_body)
      (crc good_body)
  in
  write_file path
    (String.concat ""
       [ "ALEXSNAP 2\n";
         "meta 0\n";
         Printf.sprintf "dict 0 %s\n" (crc "");
         Printf.sprintf "section bad 1 1 %s\n" (crc bad_body);
         bad_body;
         Printf.sprintf "section good 1 1 %s\n" (crc good_body);
         good_body;
         Printf.sprintf "manifest 2 %s\n" (crc manifest_body);
         manifest_body;
         "end ALEXSNAP\n"
       ]);
  (match Sn.read path with
  | Error (Sn.Malformed { section = "bad"; reason; _ }) ->
    check tbool "names the code" true (find_sub reason "dictionary" <> None)
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "an undefined code must be rejected in strict mode");
  let c = read_exn ~mode:Sn.Lenient path in
  check tint "one warning" 1 (List.length c.Sn.warnings);
  check tstr "warning names bad" "bad" (List.hd c.Sn.warnings).Sn.w_section;
  (match c.Sn.sections with
  | [ s ] ->
    check tstr "the survivor is good" "good" s.Sn.s_name;
    check tbool "odd codes are self-describing" true
      (tuples_equal [ [| Code.of_int 1 |] ] s.Sn.s_tuples)
  | _ -> Alcotest.fail "exactly the good section must survive");
  Sys.remove path

let test_manifest_crc_tamper () =
  let path = tmpfile () in
  write_two path;
  let tampered =
    List.map
      (fun l ->
        if starts_with "manifest " l then begin
          let n = String.length l in
          let repl = if l.[n - 1] = '0' then '1' else '0' in
          String.sub l 0 (n - 1) ^ String.make 1 repl
        end
        else l)
      (file_lines path)
  in
  write_lines path tampered;
  let expect = function
    | Error (Sn.Checksum_mismatch { section = "manifest"; _ }) -> ()
    | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
    | Ok _ -> Alcotest.fail "a tampered manifest must be rejected"
  in
  (* manifest damage is structural: both modes refuse *)
  expect (Sn.read path);
  expect (Sn.read ~mode:Sn.Lenient path);
  Sys.remove path

let test_missing_section_vs_manifest () =
  let path = tmpfile () in
  write_two path;
  (* drop the alpha section (header + 2 tuple lines) from the body; the
     manifest, written last, still records it *)
  let rec drop_alpha = function
    | [] -> []
    | l :: rest when starts_with "section alpha " l -> (
      match rest with _ :: _ :: rest' -> rest' | _ -> [])
    | l :: rest -> l :: drop_alpha rest
  in
  write_lines path (drop_alpha (file_lines path));
  (match Sn.read path with
  | Error (Sn.Manifest_mismatch _) -> ()
  | Error c -> Alcotest.fail ("wrong class: " ^ Sn.describe_corruption c)
  | Ok _ -> Alcotest.fail "a body/manifest disagreement must be rejected");
  Sys.remove path

(* -------------------------------------------------------------------- *)
(* Format 1 compatibility: snapshots and checkpoints written before the
   dictionary encoding (tagged values inline, no dict block) still load *)

(* serialize value-level sections in the retired format 1 layout *)
let write_v1 ?(meta = []) ~sections path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ALEXSNAP 1\n";
  Buffer.add_string buf (Printf.sprintf "meta %d\n" (List.length meta));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\n" (Sn.escape k) (Sn.escape v)))
    meta;
  let manifest = Buffer.create 256 in
  List.iter
    (fun (name, arity, tuples) ->
      let body = Buffer.create 256 in
      List.iter
        (fun tuple ->
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char body '\t';
              Buffer.add_string body (Sn.encode_value v))
            tuple;
          Buffer.add_char body '\n')
        tuples;
      let c = crc (Buffer.contents body) in
      Buffer.add_string buf
        (Printf.sprintf "section %s %d %d %s\n" (Sn.escape name) arity
           (List.length tuples) c);
      Buffer.add_buffer buf body;
      Buffer.add_string manifest
        (Printf.sprintf "%s\t%d\t%d\t%s\n" (Sn.escape name) arity
           (List.length tuples) c))
    sections;
  Buffer.add_string buf
    (Printf.sprintf "manifest %d %s\n" (List.length sections)
       (crc (Buffer.contents manifest)));
  Buffer.add_buffer buf manifest;
  Buffer.add_string buf "end ALEXSNAP\n";
  write_file path (Buffer.contents buf)

let test_v1_snapshot_still_loads () =
  let path = tmpfile () in
  let meta = [ ("kind", "database") ] in
  let sections =
    [ ( "rel:e",
        2,
        [ [| Value.int 1; Value.sym "x" |]; [| Value.int 2; Value.sym "y z" |] ]
      );
      ("rel:label", 1, [ [| Value.sym "42" |] ])
    ]
  in
  write_v1 ~meta ~sections path;
  (* the raw reader re-encodes every tagged field *)
  let c = read_exn path in
  check tbool "no warnings" true (c.Sn.warnings = []);
  check tbool "meta preserved" true (c.Sn.meta = meta);
  List.iter2
    (fun (name, arity, tuples) s ->
      check tstr "v1 section name" name s.Sn.s_name;
      check tint "v1 section arity" arity s.Sn.s_arity;
      check tbool "v1 tuples re-encoded" true
        (tuples_equal
           (List.map (fun t -> enc (Array.to_list t)) tuples)
           s.Sn.s_tuples))
    sections c.Sn.sections;
  (* and v1 lenient reads degrade per section like v2 *)
  (match Sn.read ~mode:Sn.Lenient path with
  | Ok c -> check tbool "lenient v1 read" true (c.Sn.warnings = [])
  | Error c -> Alcotest.fail (Sn.describe_corruption c));
  (* the database loader installs the coded tuples *)
  (match Sn.load_database path with
  | Error c -> Alcotest.fail (Sn.describe_corruption c)
  | Ok (db, warnings) ->
    check tbool "no load warnings" true (warnings = []);
    check tbool "v1 facts queryable" true
      (Database.mem db (Pred.make "e" 2) (enc [ Value.int 2; Value.sym "y z" ]));
    check tbool "v1 symbolic 42 stays a symbol" true
      (Database.mem db (Pred.make "label" 1) (enc [ Value.sym "42" ])));
  Sys.remove path

(* downgrade a format-2 file on disk to format 1, byte-for-byte what the
   previous release would have written for the same image *)
let downgrade_to_v1 path =
  let c = read_exn path in
  let sections =
    List.map
      (fun s ->
        ( s.Sn.s_name,
          s.Sn.s_arity,
          List.map (Array.map Code.to_value) s.Sn.s_tuples ))
      c.Sn.sections
  in
  write_v1 ~meta:c.Sn.meta ~sections path

let test_resume_from_v1_checkpoint () =
  let module O = Alexander.Options in
  let module S = Alexander.Solve in
  let module Ck = Datalog_engine.Checkpoint in
  let program = Alexander.Workloads.ancestor_chain 12 in
  let query = Datalog_parser.Parser.atom_of_string "anc(0, X)" in
  let seminaive = { O.default with O.strategy = O.Seminaive } in
  let run_exn ~options ?resume_from () =
    match S.run ~options ?resume_from program query with
    | Ok r -> r
    | Error e -> Alcotest.fail (Alexander.Errors.message e)
  in
  let full = run_exn ~options:seminaive () in
  let path = tmpfile () in
  let options =
    { seminaive with
      O.limits = Datalog_engine.Limits.make ~max_iterations:2 ();
      checkpoint = Ck.create ~path ()
    }
  in
  let r1 = run_exn ~options () in
  check tbool "setup run exhausted" true (S.incomplete r1);
  downgrade_to_v1 path;
  let resume =
    match Ck.load path with
    | Ok (r, warnings) ->
      check tbool "clean v1 checkpoint load" true (warnings = []);
      r
    | Error c -> Alcotest.fail (Sn.describe_corruption c)
  in
  let r2 = run_exn ~options:seminaive ~resume_from:resume () in
  check tbool "v1 checkpoint resumes to the full answers" true
    (r2.S.answers = full.S.answers);
  Sys.remove path

(* -------------------------------------------------------------------- *)
(* Encoding properties *)

let prop_escape_roundtrip =
  QCheck.Test.make ~name:"escape/unescape round-trips any string" ~count:500
    QCheck.string (fun s ->
      let e = Sn.escape s in
      (not
         (String.exists
            (fun c -> c = '\t' || c = '\n' || c = '\r' || c = ' ')
            e))
      && match Sn.unescape e with Ok s' -> s' = s | Error _ -> false)

let arb_value =
  QCheck.make
    ~print:(fun v -> Sn.encode_value v)
    QCheck.Gen.(
      oneof
        [ map Value.int int;
          map (fun s -> Value.sym s) (string_size (int_bound 12))
        ])

let prop_value_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips any value" ~count:500
    arb_value (fun v ->
      match Sn.decode_value (Sn.encode_value v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

(* write coded, read back, decode: the dictionary block must make raw
   codes durable across (simulated) process boundaries *)
let prop_section_roundtrip =
  QCheck.Test.make ~name:"coded sections round-trip any value tuples"
    ~count:100
    QCheck.(
      make
        ~print:(fun rows ->
          String.concat ";"
            (List.map
               (fun (i, s) -> Printf.sprintf "(%d,%s)" i s)
               rows))
        Gen.(
          list_size (int_bound 12)
            (pair int (string_size (int_bound 8)))))
    (fun rows ->
      let tuples =
        List.map (fun (i, s) -> enc [ Value.int i; Value.sym s ]) rows
      in
      let path = tmpfile () in
      match Sn.write ~sections:[ ("r", 2, tuples) ] path with
      | Error _ -> false
      | Ok () -> (
        match Sn.read path with
        | Error _ -> false
        | Ok c ->
          Sys.remove path;
          (match c.Sn.sections with
          | [ s ] -> tuples_equal tuples s.Sn.s_tuples
          | _ -> false)))

let suite =
  [ ( "snapshot",
      [ Alcotest.test_case "round-trip" `Quick test_roundtrip;
        Alcotest.test_case "database round-trip" `Quick test_db_roundtrip;
        Alcotest.test_case "duplicate sections" `Quick
          test_duplicate_section_rejected;
        Alcotest.test_case "no stale temp" `Quick test_overwrite_leaves_no_tmp;
        Alcotest.test_case "bad magic" `Quick test_bad_magic;
        Alcotest.test_case "unsupported version" `Quick
          test_unsupported_version;
        Alcotest.test_case "truncation" `Quick test_truncation_detected;
        Alcotest.test_case "bit flip (strict)" `Quick test_bitflip_strict;
        Alcotest.test_case "bit flip (lenient)" `Quick
          test_bitflip_lenient_skips_section;
        Alcotest.test_case "dictionary damage" `Quick
          test_dict_damage_is_fatal_in_both_modes;
        Alcotest.test_case "missing dictionary code" `Quick
          test_missing_dict_code;
        Alcotest.test_case "manifest tamper" `Quick test_manifest_crc_tamper;
        Alcotest.test_case "manifest mismatch" `Quick
          test_missing_section_vs_manifest;
        Alcotest.test_case "format 1 still loads" `Quick
          test_v1_snapshot_still_loads;
        Alcotest.test_case "format 1 checkpoint resumes" `Quick
          test_resume_from_v1_checkpoint
      ] );
    ( "snapshot:properties",
      List.map QCheck_alcotest.to_alcotest
        [ prop_escape_roundtrip; prop_value_roundtrip; prop_section_roundtrip ]
    )
  ]
