(* Differential tests for the compiled join-plan path (Plan) against the
   interpreted substitution path (Eval) — the oracle.  Under the
   left-to-right SIP the two must agree answer-for-answer and
   counter-for-counter on every strategy; under the cost-aware SIP the
   answers (and, for the fixpoint family, the firings) stay invariant
   while the join work changes.  Plus: unsafe-rule dialect parity, the
   incremental engine, a golden explain plan, and the Seki equivalence
   under both SIPs. *)

open Datalog_ast
module O = Alexander.Options
module S = Alexander.Solve
module E = Alexander.Equivalence
module C = Datalog_engine.Counters
module Plan = Datalog_engine.Plan

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string
let tstrings = Alcotest.(list string)

let prog = Datalog_parser.Parser.program_of_string
let atom = Datalog_parser.Parser.atom_of_string
let rule = Datalog_parser.Parser.rule_of_string

let opts ?(compile = true) ?(merge = true)
    ?(sips = Datalog_rewrite.Sips.Left_to_right) ?(negation = O.Auto) strategy
    =
  { O.default with O.strategy; compile; merge; sips; negation }

let counters (r : S.report) =
  let c = r.S.counters in
  (c.C.probes, c.C.scanned, c.C.firings, c.C.facts_derived)

let firings (r : S.report) = r.S.counters.C.firings

(* ------------------------------------------------------------------ *)
(* qcheck: compiled = interpreted, per strategy *)

let strategies_under_test =
  [ O.Naive; O.Seminaive; O.Magic; O.Supplementary; O.Supplementary_idb;
    O.Alexander; O.Tabled ]

(* Under ltr, answers AND all counters must coincide. *)
let prop_ltr_parity arb tag count =
  List.map
    (fun strategy ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "compiled = interpreted (%s, ltr, %s)"
             (O.strategy_name strategy) tag)
        ~count arb
        (fun (program, query) ->
          match
            ( S.run ~options:(opts ~merge:false strategy) program query,
              S.run ~options:(opts ~compile:false strategy) program query )
          with
          | Ok a, Ok b ->
            a.S.answers = b.S.answers && counters a = counters b
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false))
    strategies_under_test

(* Under the cost SIP the literal order changes, so only the answer set
   is pinned.  (Not even firings survive a reorder in general: a body
   that reads its own head predicate sees mid-round insertions at
   different times under different join orders, so per-round match
   counts shift even though the fixpoint is identical.) *)
let prop_cost_parity arb tag count =
  List.map
    (fun strategy ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "compiled = interpreted (%s, cost, %s)"
             (O.strategy_name strategy) tag)
        ~count arb
        (fun (program, query) ->
          let sips = Datalog_rewrite.Sips.Cost_aware in
          match
            ( S.run ~options:(opts ~sips strategy) program query,
              S.run ~options:(opts ~sips ~compile:false strategy) program query
            )
          with
          | Ok a, Ok b -> a.S.answers = b.S.answers
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false))
    strategies_under_test

(* The non-stratified-capable evaluators, driven through the seminaive
   strategy with the negation mode forced. *)
let prop_negation_modes =
  List.map
    (fun (name, negation) ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "compiled = interpreted (%s evaluator, ltr)" name)
        ~count:20 Gen.arb_stratified_program_query
        (fun (program, query) ->
          match
            ( S.run ~options:(opts ~negation ~merge:false O.Seminaive) program
                query,
              S.run
                ~options:(opts ~negation ~compile:false O.Seminaive)
                program query )
          with
          | Ok a, Ok b ->
            a.S.answers = b.S.answers && counters a = counters b
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false))
    [ ("conditional", O.Conditional); ("wellfounded", O.Well_founded) ]

(* ------------------------------------------------------------------ *)
(* Unit: comparison literals, including the both-unbound Eq alias *)

let cmp_program =
  prog
    "e(1, 2). e(2, 3). e(3, 4).\n\
     big(X) :- e(X, Y), Y > 2.\n\
     alias(X, Y) :- e(X, Z), Y = Z.\n\
     shifted(X, Y) :- e(X, Z), Y = 9, Z < 4."

let test_cmp_parity () =
  List.iter
    (fun q ->
      let query = atom q in
      List.iter
        (fun strategy ->
          let a =
            S.run_exn ~options:(opts ~merge:false strategy) cmp_program query
          in
          let b =
            S.run_exn ~options:(opts ~compile:false strategy) cmp_program query
          in
          check tbool
            (Printf.sprintf "answers %s (%s)" q (O.strategy_name strategy))
            true
            (a.S.answers = b.S.answers);
          check tbool
            (Printf.sprintf "counters %s (%s)" q (O.strategy_name strategy))
            true
            (counters a = counters b))
        [ O.Seminaive; O.Alexander ])
    [ "big(X)"; "alias(1, Y)"; "shifted(2, Y)" ]

(* The tabled dialect rejects the both-unbound alias that the rule dialect
   evaluates; compiled and interpreted must agree on that too. *)
let test_alias_dialects () =
  let query = atom "alias(1, Y)" in
  let run compile =
    S.run ~options:(opts ~compile O.Seminaive) cmp_program query
  in
  (match run true, run false with
  | Ok a, Ok b ->
    check tbool "rule dialect evaluates the alias" true
      (a.S.answers = b.S.answers && a.S.answers <> [])
  | _ -> Alcotest.fail "seminaive alias failed");
  let tabled compile =
    match S.run ~options:(opts ~compile O.Tabled) cmp_program query with
    | Ok r -> `Answers r.S.answers
    | Error e -> `Error (Alexander.Errors.message e)
  in
  check tbool "tabled agrees with itself compiled vs interpreted" true
    (tabled true = tabled false)

(* ------------------------------------------------------------------ *)
(* Unit: unsafe-rule message parity at the engine level *)

open Datalog_storage
open Datalog_engine

let fixpoint_error ?plan program =
  let db = Database.of_facts (Program.facts program) in
  let cnt = Counters.create () in
  match
    Fixpoint.seminaive cnt ?plan ~db
      ~neg:(Eval.closed_world_neg db)
      (Program.rules program)
  with
  | () -> None
  | exception Eval.Unsafe_rule msg -> Some msg

let test_unsafe_parity () =
  let cases =
    [ (* comparison reached with an unbound variable *)
      "p(X) :- e(X, Y), W < Y.\ne(1, 2).";
      (* negative literal not ground at evaluation time *)
      "p(X) :- e(X, Y), not q(W).\nq(5, 5).\ne(1, 2).";
      (* non-ground head *)
      "p(X, W) :- e(X, Y).\ne(1, 2)."
    ]
  in
  List.iter
    (fun src ->
      let program = prog src in
      let interpreted = fixpoint_error program in
      let compiled = fixpoint_error ~plan:(Plan.config ()) program in
      check tbool (Printf.sprintf "both raise (%s)" src) true
        (Option.is_some interpreted && Option.is_some compiled);
      check tstr "same message" (Option.get interpreted) (Option.get compiled))
    cases

(* ------------------------------------------------------------------ *)
(* Unit: semi-naive delta rules, compiled = interpreted *)

let test_delta_parity () =
  let program = Alexander.Workloads.ancestor_chain 60 in
  let query = atom "anc(10, X)" in
  let a = S.run_exn ~options:(opts ~merge:false O.Seminaive) program query in
  let b = S.run_exn ~options:(opts ~compile:false O.Seminaive) program query in
  check tint "answers" (List.length a.S.answers) (List.length b.S.answers);
  check tbool "counters" true (counters a = counters b);
  check tint "iterations" a.S.counters.C.iterations b.S.counters.C.iterations

(* ------------------------------------------------------------------ *)
(* Unit: the incremental engine with and without plans *)

let test_incremental_parity () =
  let program = Alexander.Workloads.ancestor_chain 30 in
  let run plan =
    let db = Database.of_facts (Program.facts program) in
    let cnt = Counters.create () in
    (match
       Incremental.add_facts cnt ?plan program db
         [ atom "edge(30, 31)"; atom "edge(31, 32)" ]
     with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    (match Incremental.remove_facts cnt ?plan program db [ atom "edge(5, 6)" ] with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg);
    (Gen.db_facts_of (Gen.idb_preds program) db, cnt.C.facts_derived)
  in
  let facts_i, derived_i = run None in
  let facts_c, derived_c = run (Some (Plan.config ())) in
  check tbool "same database" true (facts_i = facts_c);
  check tint "same derivations" derived_i derived_c

(* ------------------------------------------------------------------ *)
(* Golden explain: the compiled plan of the canonical ancestor rule *)

let test_golden_explain () =
  let r = rule "anc(X, Y) :- edge(X, Z), anc(Z, Y)." in
  let cfg = Plan.config () in
  (* the full variant probes the rule's own head predicate, which is not
     frozen during a rule application — no merge fusion *)
  let info = Plan.info (Plan.compile cfg ~card:(fun _ -> 0) r) in
  check tstr "variant" "full" info.Plan.i_variant;
  check tstr "sip" "ltr" info.Plan.i_sip;
  check tstrings "steps"
    [ "scan edge/2 match[0:=X,1:=Z]";
      "probe anc/2 key[0=Z] match[1:=Y]";
      "emit anc(X,Y)"
    ]
    info.Plan.i_steps;
  (* the delta literal never changes mid-round, so the same probe fuses *)
  let delta = Plan.info (Plan.compile cfg ~card:(fun _ -> 0) ~delta_pos:1 r) in
  check tstr "delta variant" "delta@1" delta.Plan.i_variant;
  check tstrings "delta steps"
    [ "merge edge/2 match[0:=X,1:=Z] * anc/2 key[0=Z] match[1:=Y]";
      "emit anc(X,Y)"
    ]
    delta.Plan.i_steps;
  (* with merge fusion off, the unfused pair comes back *)
  let nomerge_cfg = Plan.config ~merge:false () in
  let nomerge =
    Plan.info (Plan.compile nomerge_cfg ~card:(fun _ -> 0) ~delta_pos:1 r)
  in
  check tstrings "delta steps (no merge)"
    [ "scan edge/2 match[0:=X,1:=Z]";
      "probe anc/2 key[0=Z] match[1:=Y]";
      "emit anc(X,Y)"
    ]
    nomerge.Plan.i_steps;
  (* cost SIP: make anc much smaller than edge, so the body is reordered
     to scan anc first and probe edge through the bound Z; edge is not
     the head predicate, so the pair fuses *)
  let cost_cfg = Plan.config ~sip:Plan.Cost () in
  let card p = if Pred.name p = "anc" then 5 else 100 in
  let cost = Plan.info (Plan.compile cost_cfg ~card r) in
  check Alcotest.(list int) "cost order" [ 1; 0 ] cost.Plan.i_order;
  check tstrings "cost steps"
    [ "merge anc/2 match[0:=Z,1:=Y] * edge/2 key[1=Z] match[0:=X]";
      "emit anc(X,Y)"
    ]
    cost.Plan.i_steps

(* --explain surfaces the same plans through the report *)
let test_report_plans () =
  let program = Alexander.Workloads.ancestor_chain 10 in
  let options = { (opts O.Seminaive) with O.explain = true } in
  let report = S.run_exn ~options program (atom "anc(0, X)") in
  check tbool "plans reported" true (report.S.plans <> []);
  check tbool "full and delta variants present" true
    (List.exists (fun i -> i.Plan.i_variant = "full") report.S.plans
    && List.exists
         (fun i -> String.length i.Plan.i_variant >= 5
                   && String.sub i.Plan.i_variant 0 5 = "delta")
         report.S.plans);
  let interpreted =
    S.run_exn
      ~options:{ options with O.compile = false }
      program (atom "anc(0, X)")
  in
  check tbool "no plans when interpreted" true (interpreted.S.plans = [])

(* ------------------------------------------------------------------ *)
(* The Seki equivalence must hold under both SIPs *)

let test_equivalence_under_sips () =
  List.iter
    (fun (name, sips) ->
      List.iter
        (fun (wname, program, q) ->
          match E.check ~sips program (atom q) with
          | Error msg -> Alcotest.fail msg
          | Ok outcome ->
            check tbool
              (Printf.sprintf "equivalent (%s, %s)" wname name)
              true outcome.E.equivalent)
        [ ("anc chain", Alexander.Workloads.ancestor_chain 80, "anc(20, X)");
          ( "same gen",
            Alexander.Workloads.same_generation ~layers:5 ~width:6,
            "sg(0, X)" )
        ])
    [ ("ltr", Datalog_rewrite.Sips.Left_to_right);
      ("cost", Datalog_rewrite.Sips.Cost_aware)
    ]

(* ------------------------------------------------------------------ *)
(* The cost SIP actually reduces join work on the bound-chain workload
   (the acceptance criterion of the plan compiler) *)

let test_cost_reduces_work () =
  let program = Alexander.Workloads.ancestor_chain 100 in
  let query = atom "anc(75, X)" in
  let ltr = S.run_exn ~options:(opts O.Seminaive) program query in
  let cost =
    S.run_exn
      ~options:(opts ~sips:Datalog_rewrite.Sips.Cost_aware O.Seminaive)
      program query
  in
  check tbool "same answers" true (ltr.S.answers = cost.S.answers);
  check tint "same firings" (firings ltr) (firings cost);
  check tbool "fewer probes" true
    (cost.S.counters.C.probes < ltr.S.counters.C.probes);
  check tbool "less scanned" true
    (cost.S.counters.C.scanned < ltr.S.counters.C.scanned)

(* ------------------------------------------------------------------ *)
(* Merge-join plans vs hash-join plans: byte-identical answers and fact
   counters; probes may only drop *)

let merge_invariants (r : S.report) =
  let c = r.S.counters in
  (r.S.answers, c.C.scanned, c.C.firings, c.C.facts_derived, c.C.iterations)

let prop_merge_parity arb tag count =
  List.map
    (fun strategy ->
      QCheck.Test.make
        ~name:
          (Printf.sprintf "merge = hash join (%s, %s)"
             (O.strategy_name strategy) tag)
        ~count arb
        (fun (program, query) ->
          match
            ( S.run ~options:(opts strategy) program query,
              S.run ~options:(opts ~merge:false strategy) program query )
          with
          | Ok m, Ok h ->
            merge_invariants m = merge_invariants h
            && m.S.counters.C.probes <= h.S.counters.C.probes
            && h.S.counters.C.merge_steps = 0
            && h.S.counters.C.gallops = 0
          | Error _, Error _ -> true
          | Ok _, Error _ | Error _, Ok _ -> false))
    strategies_under_test

let test_merge_reduces_probes () =
  let program = Alexander.Workloads.ancestor_chain 80 in
  let query = atom "anc(20, X)" in
  List.iter
    (fun strategy ->
      let m = S.run_exn ~options:(opts strategy) program query in
      let h = S.run_exn ~options:(opts ~merge:false strategy) program query in
      let name fmt =
        Printf.sprintf "%s (%s)" fmt (O.strategy_name strategy)
      in
      check tbool (name "same answers+facts") true
        (merge_invariants m = merge_invariants h);
      check tbool (name "merge steps ran") true
        (m.S.counters.C.merge_steps > 0);
      check tbool (name "gallops ran") true (m.S.counters.C.gallops > 0);
      check tbool (name "fewer probes") true
        (m.S.counters.C.probes < h.S.counters.C.probes))
    [ O.Seminaive; O.Magic; O.Supplementary; O.Supplementary_idb; O.Alexander ]

let suite =
  [ ( "plan",
      [ Alcotest.test_case "cmp parity" `Quick test_cmp_parity;
        Alcotest.test_case "alias dialects" `Quick test_alias_dialects;
        Alcotest.test_case "unsafe message parity" `Quick test_unsafe_parity;
        Alcotest.test_case "delta parity" `Quick test_delta_parity;
        Alcotest.test_case "incremental parity" `Quick test_incremental_parity;
        Alcotest.test_case "golden explain" `Quick test_golden_explain;
        Alcotest.test_case "report plans" `Quick test_report_plans;
        Alcotest.test_case "equivalence under both sips" `Quick
          test_equivalence_under_sips;
        Alcotest.test_case "cost sip reduces work" `Quick
          test_cost_reduces_work;
        Alcotest.test_case "merge join reduces probes" `Quick
          test_merge_reduces_probes
      ]
      @ List.map QCheck_alcotest.to_alcotest
          (prop_ltr_parity Gen.arb_positive_program_query "positive" 40
          @ prop_cost_parity Gen.arb_positive_program_query "positive" 25
          @ prop_ltr_parity Gen.arb_stratified_program_query "stratified" 25
          @ prop_merge_parity Gen.arb_positive_program_query "positive" 40
          @ prop_merge_parity Gen.arb_stratified_program_query "stratified" 25
          @ prop_negation_modes) )
  ]
